"""Shared-directory job queue: multi-host campaign execution over files.

The supervised backend (PR 8) bounded every single-host failure mode —
crashes, hangs, silent workers — but the paper's evaluation campaigns
(protocol x density x channel grids, 20 seeded trials per point) want
*several* machines chewing one durable trial queue.  The only
coordination substrate such machines reliably share is a filesystem
(NFS, a synced scratch dir, or plain ``/tmp`` for same-host workers), so
this module builds the whole distributed contract out of two filesystem
primitives that are atomic everywhere that matters:

* ``O_CREAT | O_EXCL`` — at most one creator wins, ever;
* ``rename`` within a directory — a file appears complete or not at all.

On top of those:

**Claims with fencing tokens.**  Every trial has at most one claim file.
The *first* claim is arbitrated by ``O_EXCL`` on the claim file itself
(token 1).  Every later takeover — an expired lease, a released claim —
is arbitrated by ``O_EXCL`` on a per-generation marker file
(``gen/<id>.g<N>``), so the token sequence is strictly monotonic and
allocated exactly once.  A worker commits its result *through* the
token: the commit re-reads the claim and refuses (``StaleLeaseError``)
unless the claim still names this worker and this token.  A worker that
was paused (laptop sleep, SIGSTOP, an NFS stall) past its lease and
resumed after a reclaim therefore cannot clobber the reclaimer — its
late commit is rejected and recorded, never applied.

**Clock-skew-immune expiry.**  Hosts sharing an NFS export do not share
a clock; a reclaimer that compared another host's ``time.time()``
deadline against its own would reclaim live leases (fast clock) or never
reclaim dead ones (slow clock).  :class:`LeaseObserver` never reads a
remote timestamp for the decision: it watches the claim's *signature*
(owner, token, heartbeat sequence number) and declares the lease expired
only after the signature has stayed frozen for a full TTL of **local
monotonic** time.  Wall-clock fields in claim files are advisory, for
``repro journal inspect`` humans only.

**Poison-trial quarantine.**  A trial whose very execution kills its
worker (OOM, segfault in a native kernel, a chaos SIGKILL) would
otherwise be reclaimed and re-run forever, taking a worker down each
time and starving the queue.  Each reclaim-from-death records the dead
owner; once ``quarantine_after`` *distinct* workers have died holding
the same trial, the winner of the next takeover parks the trial in
``quarantine/`` (with whatever traceback any attempt managed to leave)
instead of running it.  Clean Python exceptions are not deaths: they
release the claim with the attempt counter bumped and are bounded by
``max_attempts`` like everywhere else.

Layout of a queue directory::

    queue/
      manifest.json        campaign fingerprint + settings (scheduler-written)
      tasks/<id>.task      pickled trial (key, fn, args, kwargs, chaos plan)
      claims/<id>.claim    JSON claim: owner, host, pid, token, attempt
      gen/<id>.g<N>        O_EXCL fencing-token allocation markers
      hb/<id>              heartbeat file: owner, token, seq (atomic rename)
      deaths/<id>.<h>      one marker per distinct owner that died holding <id>
      crash/<id>.g<N>.tb   captured tracebacks per failed generation
      stale/<id>.g<N>      rejected stale commits (evidence, not state)
      results/<id>.result  pickled fenced result (atomic rename commit)
      quarantine/<id>.json parked poison trials

Workers (:func:`run_worker_loop`, the ``repro worker`` CLI) need nothing
but this directory; the scheduling side
(:class:`DirQueueBackend`, registered as ``backend="dir-queue"``) is one
more peer that also spawns local workers, mirrors observed claims into
the campaign journal as lease records, journals each result exactly
once, and degrades down the PR 8 ladder (``dir-queue →
local-supervised → local-process → local-serial``) when the shared
directory goes read-only, stat latency spikes, or workers die faster
than the respawn budget.

Like every backend, ``dir-queue`` must be bit-identical to
``local-serial``: trials are pure functions of their spec, so *who* runs
them (and how many times infrastructure made them re-run) can never
change the values.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import signal
import socket
import tempfile
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import chaos as _chaos
from repro.core.backend import ExecutionBackend, SupervisedBackend
from repro.core.journal import TrialJournal, trial_key_id
from repro.core.registry import register
from repro.core.runner import TrialOutcome, TrialRunner, TrialSpec
from repro.util.errors import ConfigError, StaleLeaseError, TrialError

#: Subdirectories of a queue root, created by :meth:`DirQueue.setup`.
_SUBDIRS = (
    "tasks", "claims", "gen", "hb", "deaths", "crash", "stale",
    "results", "quarantine",
)

#: How many distinct dead workers park a trial, absent explicit config.
DEFAULT_QUARANTINE_AFTER = 3

#: How many worker respawns the scheduling side pays for before deciding
#: the queue itself is the problem and degrading, per initial worker.
RESPAWN_BUDGET_PER_WORKER = 3

#: Parent-side health probe: consecutive slow ``stat`` calls on the
#: queue root (each slower than the latency budget) that trip a degrade.
STAT_LATENCY_BUDGET_S = 0.5
STAT_LATENCY_STRIKES = 3


# -- durability + clock hooks -------------------------------------------------
#
# Module-level indirection so the chaos filesystem shim (tests, the
# distq chaos smoke) can monkeypatch durability and health primitives in
# the *parent* and have forked workers inherit the lie.  The exactly-once
# guarantees must come from O_EXCL and rename alone; fsync only narrows
# the power-loss window, so a lying fsync may cost durability, never
# correctness — which is precisely what the shim exists to prove.


def _fsync_file(fd: int) -> None:
    os.fsync(fd)


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # cannot open directories here; durability is best-effort
    try:
        os.fsync(fd)
    except OSError:
        return  # fs refuses directory fsync (some FUSE/NFS mounts)
    finally:
        os.close(fd)


def _stat(path: str):
    return os.stat(path)


def worker_identity(epoch: Optional[int] = None) -> str:
    """``host:pid:epoch`` — unique per worker *incarnation*.

    Host and pid alone are not enough: pids are reused, and the
    quarantine ledger counts *distinct* dead workers.  The epoch (a
    caller-supplied spawn counter, or a microsecond stamp for standalone
    workers) makes a respawned worker a new identity, so a poison trial
    that keeps killing the respawns of one slot still accumulates
    distinct deaths.
    """
    stamp = int(time.time() * 1e6) if epoch is None else int(epoch)
    return f"{socket.gethostname()}:{os.getpid()}:{stamp}"


@dataclasses.dataclass(frozen=True)
class ClaimState:
    """One parsed claim file.

    ``claimed_unix`` is advisory (it is another host's wall clock);
    expiry decisions go through :class:`LeaseObserver` instead.
    """

    owner: str
    host: str
    pid: int
    token: int
    attempt: int
    released: bool
    claimed_unix: float


#: Sentinel for a claim file that exists but cannot be parsed yet — the
#: gap between ``O_EXCL`` creation and the content write, or NFS serving
#: a half-cached page.  Treated as "present, in flux": never claimable
#: fresh, and the observer restarts its TTL when real content appears.
CLAIM_IN_FLUX = ClaimState(
    owner="?", host="?", pid=-1, token=-1, attempt=0,
    released=False, claimed_unix=0.0,
)


class LeaseObserver:
    """Skew-free lease expiry: local monotonic watch over claim signatures.

    ``expired(tid, signature)`` answers: *has this exact signature been
    frozen for at least one TTL of my own monotonic clock?*  Any change —
    a new owner, a bumped fencing token, a fresh heartbeat sequence
    number — restarts the window.  No remote timestamp is ever compared,
    so a reclaimer 30 s fast or slow behaves identically to one whose
    clock is perfect (the clock-skew test drives exactly that).
    """

    def __init__(self, ttl_s: float) -> None:
        if ttl_s <= 0:
            raise ConfigError(f"ttl_s must be > 0, got {ttl_s}")
        self.ttl_s = float(ttl_s)
        self._seen: Dict[str, Tuple[Any, float]] = {}

    def expired(self, tid: str, signature: Any) -> bool:
        now = time.monotonic()
        previous = self._seen.get(tid)
        if previous is None or previous[0] != signature:
            self._seen[tid] = (signature, now)
            return False
        return now - previous[1] >= self.ttl_s

    def forget(self, tid: str) -> None:
        self._seen.pop(tid, None)


def _atomic_write(path: str, data: bytes, fsync: bool = True) -> None:
    """Write ``data`` so ``path`` is only ever absent or complete."""
    directory = os.path.dirname(path) or "."
    temp = os.path.join(
        directory, f".{os.path.basename(path)}.{os.getpid()}.tmp"
    )
    with open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            _fsync_file(handle.fileno())
    os.replace(temp, path)
    if fsync:
        _fsync_dir(directory)


class DirQueue:
    """One queue directory: claims, fencing, results, quarantine.

    Every method is safe to call concurrently from any number of
    processes on any number of hosts sharing ``root``; the arbitration
    is in the filesystem, not in this object.  Construct with
    ``create=True`` on the scheduling side (makes the layout and
    manifest) and ``create=False`` on workers (requires an existing
    manifest).
    """

    def __init__(
        self,
        root: str,
        ttl_s: float = 30.0,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
        max_attempts: int = 2,
    ) -> None:
        if quarantine_after < 1:
            raise ConfigError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.root = str(root)
        self.ttl_s = float(ttl_s)
        self.quarantine_after = int(quarantine_after)
        self.max_attempts = int(max_attempts)

    # -- layout ---------------------------------------------------------------

    def _dir(self, name: str) -> str:
        return os.path.join(self.root, name)

    def _path(self, kind: str, name: str) -> str:
        return os.path.join(self.root, kind, name)

    @staticmethod
    def task_id(key: Any) -> str:
        """Filesystem-safe stable identity of one trial key."""
        digest = hashlib.sha256(
            trial_key_id(key).encode("utf-8")
        ).hexdigest()
        return digest[:20]

    def setup(self, manifest: Dict[str, Any]) -> None:
        """Create the layout and write (or verify) the manifest.

        Re-running setup over an existing queue with the same campaign
        fingerprint is the resume path — the scheduler died and came
        back; existing claims/results are the recovered state.  A
        *different* fingerprint is a configuration error, exactly like
        resuming a journal from the wrong campaign.
        """
        os.makedirs(self.root, exist_ok=True)
        for sub in _SUBDIRS:
            os.makedirs(self._dir(sub), exist_ok=True)
        manifest_path = os.path.join(self.root, "manifest.json")
        existing = self._read_json(manifest_path)
        if existing is not None:
            if existing.get("fingerprint") != manifest.get("fingerprint"):
                raise ConfigError(
                    f"queue dir {self.root!r} belongs to a different "
                    f"campaign (fingerprint {existing.get('fingerprint')!r}"
                    f" != {manifest.get('fingerprint')!r}); refusing to mix"
                )
            return
        _atomic_write(
            manifest_path,
            json.dumps(manifest, sort_keys=True).encode("utf-8"),
        )

    def manifest(self) -> Optional[Dict[str, Any]]:
        return self._read_json(os.path.join(self.root, "manifest.json"))

    @staticmethod
    def _read_json(path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "rb") as handle:
                return json.loads(handle.read().decode("utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return None

    # -- tasks ----------------------------------------------------------------

    def enqueue(self, task: Dict[str, Any]) -> str:
        """Add one trial (idempotent: re-enqueueing is a no-op)."""
        tid = self.task_id(task["key"])
        path = self._path("tasks", f"{tid}.task")
        if not os.path.exists(path):
            _atomic_write(
                path, pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
            )
        return tid

    def task_ids(self) -> List[str]:
        try:
            names = os.listdir(self._dir("tasks"))
        except OSError:
            return []
        return sorted(
            name[: -len(".task")]
            for name in names
            if name.endswith(".task")
        )

    def read_task(self, tid: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._path("tasks", f"{tid}.task"), "rb") as handle:
                return pickle.loads(handle.read())
        except (OSError, pickle.UnpicklingError, EOFError):
            return None

    # -- claims + fencing -----------------------------------------------------

    def read_claim(self, tid: str) -> Optional[ClaimState]:
        """The current claim: ``None`` (unclaimed), a state, or in-flux."""
        path = self._path("claims", f"{tid}.claim")
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        except OSError:
            return CLAIM_IN_FLUX
        try:
            obj = json.loads(raw.decode("utf-8"))
            return ClaimState(
                owner=str(obj["owner"]),
                host=str(obj.get("host", "?")),
                pid=int(obj.get("pid", -1)),
                token=int(obj["token"]),
                attempt=int(obj.get("attempt", 1)),
                released=bool(obj.get("released", False)),
                claimed_unix=float(obj.get("claimed_unix", 0.0)),
            )
        except (ValueError, KeyError, TypeError):
            return CLAIM_IN_FLUX

    def _claim_payload(
        self, owner: str, token: int, attempt: int, released: bool
    ) -> bytes:
        host, pid = "?", -1
        if owner and ":" in owner:
            host, pid_text = owner.split(":", 2)[:2]
            try:
                pid = int(pid_text)
            except ValueError:
                pid = -1
        return json.dumps(
            {
                "owner": owner,
                "host": host,
                "pid": pid,
                "token": int(token),
                "attempt": int(attempt),
                "released": bool(released),
                # Advisory only — another host's wall clock is never used
                # for expiry (see LeaseObserver).
                "claimed_unix": time.time(),
            },
            sort_keys=True,
        ).encode("utf-8")

    def try_claim_fresh(self, tid: str, owner: str) -> Optional[ClaimState]:
        """First-generation claim: ``O_EXCL`` on the claim file itself."""
        path = self._path("claims", f"{tid}.claim")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        except OSError:
            return None  # read-only dir etc.; caller's health probe reacts
        try:
            os.write(fd, self._claim_payload(owner, 1, 1, False))
            _fsync_file(fd)
        finally:
            os.close(fd)
        _fsync_dir(self._dir("claims"))
        return self.read_claim(tid)

    def highest_gen(self, tid: str, floor: int) -> int:
        """Highest allocated fencing generation for ``tid``, at least ``floor``.

        Generations are allocated contiguously upward from the claim's
        token, so probing for successive markers finds any generation
        whose winner died between creating the marker and rewriting the
        claim — the orphaned-takeover window.
        """
        gen = max(1, int(floor))
        while os.path.exists(self._path("gen", f"{tid}.g{gen + 1}")):
            gen += 1
        return gen

    def try_takeover(
        self,
        tid: str,
        owner: str,
        current: ClaimState,
        dead_owner: Optional[str] = None,
        skip_orphans: bool = False,
    ) -> Optional[ClaimState]:
        """Race for the next generation; the winner rewrites the claim.

        ``dead_owner`` marks a takeover *from a corpse* (expired lease):
        the dead identity is added to the trial's death ledger and, once
        the ledger holds ``quarantine_after`` distinct identities, the
        winner quarantines the trial instead of re-running it (returns
        ``None`` after parking — there is nothing to run).  A takeover of
        a *released* claim (clean failure, attempt already bumped) leaves
        the ledger alone.

        The contested generation is ``current.token + 1`` — except with
        ``skip_orphans``, which arbitrates past any *orphaned* markers: a
        contender that died between winning a generation marker and
        rewriting the claim leaves the claim frozen at N while ``g(N+1)``
        exists, and colliding with that marker forever would wedge the
        trial.  Callers must only skip after a full TTL of frozen claim
        signature (the signature includes the highest marker, so a fresh
        marker restarts the window) — otherwise a live, mid-takeover
        winner could be raced for the generation after its own.

        Exactly one contender can win any given token: the ``O_EXCL``
        generation marker is the whole arbitration.
        """
        token = (
            self.highest_gen(tid, current.token) + 1
            if skip_orphans
            else current.token + 1
        )
        marker = self._path("gen", f"{tid}.g{token}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        except OSError:
            return None
        try:
            os.write(fd, owner.encode("utf-8"))
            _fsync_file(fd)
        finally:
            os.close(fd)
        if dead_owner is not None:
            self.record_death(tid, dead_owner)
            if len(self.distinct_deaths(tid)) >= self.quarantine_after:
                task = self.read_task(tid)
                key_id = (
                    trial_key_id(task["key"]) if task is not None else tid
                )
                self.write_quarantine(
                    tid,
                    key_id=key_id,
                    owners=self.distinct_deaths(tid),
                    attempts=max(1, current.attempt),
                    traceback_text=self.last_traceback(tid),
                )
                return None
        attempt = max(1, current.attempt)
        _atomic_write(
            self._path("claims", f"{tid}.claim"),
            self._claim_payload(owner, token, attempt, False),
        )
        return self.read_claim(tid)

    def release(self, tid: str, claim: ClaimState, error: str) -> None:
        """Clean-failure release: same token, attempt bumped, no owner.

        The traceback is preserved per generation so a later quarantine
        (or a human) can see what the attempts actually raised.
        """
        self.write_traceback(tid, claim.token, error)
        _atomic_write(
            self._path("claims", f"{tid}.claim"),
            self._claim_payload("", claim.token, claim.attempt + 1, True),
        )

    def heartbeat(self, tid: str, owner: str, token: int, seq: int) -> None:
        """Progress evidence: atomically replace the heartbeat file.

        No fsync — losing heartbeats to a power cut costs nothing; the
        observer just sees a frozen signature and reclaims.
        """
        _atomic_write(
            self._path("hb", tid),
            json.dumps(
                {"owner": owner, "token": int(token), "seq": int(seq)}
            ).encode("utf-8"),
            fsync=False,
        )

    def claim_signature(self, tid: str, claim: ClaimState) -> Tuple:
        """What the lease observer watches: identity + liveness evidence.

        The highest fencing marker is part of the signature so that an
        in-flight takeover (marker won, claim not yet rewritten) restarts
        the observer's TTL window: only a marker that then stays orphaned
        for a full TTL justifies arbitrating past it.
        """
        beat = self._read_json(self._path("hb", tid))
        seq = None
        if (
            beat is not None
            and beat.get("owner") == claim.owner
            and beat.get("token") == claim.token
        ):
            seq = beat.get("seq")
        return (
            claim.owner, claim.token, seq,
            self.highest_gen(tid, claim.token),
        )

    # -- death ledger + quarantine -------------------------------------------

    @staticmethod
    def _owner_digest(owner: str) -> str:
        return hashlib.sha256(owner.encode("utf-8")).hexdigest()[:16]

    def record_death(self, tid: str, owner: str) -> None:
        path = self._path(
            "deaths", f"{tid}.{self._owner_digest(owner)}"
        )
        if not os.path.exists(path):
            _atomic_write(path, owner.encode("utf-8"))

    def distinct_deaths(self, tid: str) -> List[str]:
        owners = []
        try:
            names = os.listdir(self._dir("deaths"))
        except OSError:
            return []
        for name in sorted(names):
            if not name.startswith(f"{tid}."):
                continue
            try:
                with open(self._path("deaths", name), "rb") as handle:
                    owners.append(handle.read().decode("utf-8"))
            except OSError:
                continue
        return owners

    def write_traceback(self, tid: str, token: int, text: str) -> None:
        _atomic_write(
            self._path("crash", f"{tid}.g{token}.tb"),
            str(text)[:8000].encode("utf-8"),
            fsync=False,
        )

    def last_traceback(self, tid: str) -> str:
        try:
            names = sorted(
                name
                for name in os.listdir(self._dir("crash"))
                if name.startswith(f"{tid}.")
            )
        except OSError:
            names = []
        for name in reversed(names):
            try:
                with open(self._path("crash", name), "rb") as handle:
                    return handle.read().decode("utf-8")
            except OSError:
                continue
        return (
            "no traceback captured: worker died without reporting "
            "(SIGKILL/OOM/segfault)"
        )

    def write_quarantine(
        self,
        tid: str,
        key_id: str,
        owners: Sequence[str],
        attempts: int,
        traceback_text: str,
    ) -> None:
        _atomic_write(
            self._path("quarantine", f"{tid}.json"),
            json.dumps(
                {
                    "key_id": key_id,
                    "owners": list(owners),
                    "attempts": int(attempts),
                    "traceback": str(traceback_text)[:8000],
                },
                sort_keys=True,
            ).encode("utf-8"),
        )

    def read_quarantine(self, tid: str) -> Optional[Dict[str, Any]]:
        return self._read_json(self._path("quarantine", f"{tid}.json"))

    # -- fenced results -------------------------------------------------------

    def commit_result(
        self,
        tid: str,
        owner: str,
        token: int,
        result: Dict[str, Any],
    ) -> None:
        """Commit a result through the fence, or refuse.

        The claim is re-read at commit time: if it no longer names
        ``owner`` with ``token``, this worker's lease was reclaimed while
        it computed (or while it was paused) and the commit raises
        :class:`StaleLeaseError` after leaving a ``stale/`` marker as
        evidence.  The check-then-rename window is not zero, but a race
        through it is harmless by construction: trials are deterministic,
        so any two committed results for one trial carry identical
        values, and the journal records the trial exactly once either
        way.
        """
        claim = self.read_claim(tid)
        current = None if claim is None else claim.token
        if claim is None or claim.owner != owner or claim.token != token:
            _atomic_write(
                self._path("stale", f"{tid}.g{token}"),
                owner.encode("utf-8"),
                fsync=False,
            )
            raise StaleLeaseError(
                f"lease for task {tid} was reclaimed (held token {token}, "
                f"claim now {current!r}); dropping the late commit",
                token=token,
                current=current,
            )
        result = dict(result)
        result["owner"] = owner
        result["token"] = int(token)
        _atomic_write(
            self._path("results", f"{tid}.result"),
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def read_result(self, tid: str) -> Optional[Dict[str, Any]]:
        try:
            with open(
                self._path("results", f"{tid}.result"), "rb"
            ) as handle:
                return pickle.loads(handle.read())
        except FileNotFoundError:
            return None

    def has_result(self, tid: str) -> bool:
        return os.path.exists(self._path("results", f"{tid}.result"))

    def has_quarantine(self, tid: str) -> bool:
        return os.path.exists(self._path("quarantine", f"{tid}.json"))

    def drop_result(self, tid: str) -> None:
        """Parent-side repair: discard an unreadable result file.

        The committing worker moved on the moment it renamed the result
        in, so its claim would otherwise sit with frozen heartbeats until
        a peer reclaims it through the dead-owner path — charging a live,
        healthy worker to the death ledger, and a few corrupt-result
        cycles could spuriously quarantine the trial.  Marking the claim
        released (same token, attempt preserved — the fault is the
        infrastructure's, not the trial's) sends the reclaim down the
        released path, which records no death.
        """
        try:
            os.unlink(self._path("results", f"{tid}.result"))
        except OSError:
            return  # already gone, or read-only: the health probe reacts
        claim = self.read_claim(tid)
        if claim is None or claim is CLAIM_IN_FLUX or claim.released:
            return
        try:
            _atomic_write(
                self._path("claims", f"{tid}.claim"),
                self._claim_payload("", claim.token, claim.attempt, True),
            )
        except OSError:
            return  # read-only queue: the health probe reacts

    def stale_markers(self) -> List[str]:
        try:
            return sorted(os.listdir(self._dir("stale")))
        except OSError:
            return []

    def drained(self) -> bool:
        """Every enqueued trial has a result or a quarantine decision."""
        ids = self.task_ids()
        return bool(ids) and all(
            self.has_result(tid) or self.has_quarantine(tid) for tid in ids
        )


# -- the worker side ----------------------------------------------------------


def _run_claimed(
    queue: DirQueue,
    tid: str,
    task: Dict[str, Any],
    claim: ClaimState,
    me: str,
    heartbeat_interval_s: float,
    trial_timeout_s: Optional[float],
) -> None:
    """Execute one claimed trial under heartbeats and the fence.

    Chaos sabotage (from the task's embedded plan) applies to fencing
    generation 1 only — reclaimed generations run clean, which is what
    lets a sabotaged campaign converge to the serial truth — except
    ``kill_all``, which sabotages every generation and drives the
    quarantine path.  A trial that outlives ``trial_timeout_s`` is
    handled by SIGKILLing *ourselves* from the heartbeat thread: the
    lease then freezes, a peer reclaims, and the death ledger charges
    this incarnation — a hang is indistinguishable from a crash to the
    rest of the protocol, which is the simplest correct semantics when
    the trial runs in our own process.
    """
    fn: Callable[..., Any] = task["fn"]
    args, kwargs = task.get("args", ()), task.get("kwargs", {})
    mode = task.get("chaos_mode")
    if task.get("kill_all"):
        mode = "sigkill"
    elif claim.token != 1:
        mode = None
    heartbeats_enabled = mode != "mute"
    if mode is not None:
        fn, args, kwargs = (
            _chaos.sabotage, (fn, args, kwargs, mode), {},
        )

    stop = threading.Event()
    started = time.monotonic()

    def beat() -> None:
        seq = 0
        while not stop.wait(heartbeat_interval_s):
            if (
                trial_timeout_s is not None
                and time.monotonic() - started > trial_timeout_s
            ):
                # Hung trial: go silent and die so a peer reclaims us.
                os.kill(os.getpid(), signal.SIGKILL)
            if not heartbeats_enabled:
                continue  # muted: keep only the watchdog half alive
            seq += 1
            try:
                queue.heartbeat(tid, me, claim.token, seq)
            except OSError:
                return  # queue unwritable; the claim will simply expire

    if heartbeats_enabled or trial_timeout_s is not None:
        threading.Thread(target=beat, daemon=True).start()

    try:
        value = fn(*args, **kwargs)
    except Exception as exc:
        stop.set()
        error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        if claim.attempt >= queue.max_attempts:
            try:
                queue.commit_result(
                    tid, me, claim.token,
                    {
                        "status": "error",
                        "error": error,
                        "attempts": claim.attempt,
                        "wall_clock_s": time.monotonic() - started,
                    },
                )
            except StaleLeaseError:
                return  # someone reclaimed us mid-trial; their call now
        else:
            queue.release(tid, claim, error)
        return
    stop.set()
    elapsed = time.monotonic() - started
    try:
        queue.commit_result(
            tid, me, claim.token,
            {
                "status": "ok",
                "value": value,
                "attempts": claim.attempt,
                "wall_clock_s": elapsed,
            },
        )
    except StaleLeaseError:
        return  # fenced out: drop the value; the current holder commits


def _discover_queues(root: str) -> List[str]:
    """Queue roots under ``root``: itself, or ``jobs/*/queue`` children.

    This is what lets one ``repro worker --follow`` serve every job a
    ``repro serve`` spool ever creates: point it at the spool directory
    and it picks up each job's queue as the scheduler materialises it.
    """
    if os.path.exists(os.path.join(root, "manifest.json")):
        return [root]
    jobs = os.path.join(root, "jobs")
    found = []
    try:
        names = sorted(os.listdir(jobs))
    except OSError:
        return []
    for name in names:
        candidate = os.path.join(jobs, name, "queue")
        if os.path.exists(os.path.join(candidate, "manifest.json")):
            found.append(candidate)
    return found


def run_worker_loop(
    root: str,
    owner: Optional[str] = None,
    poll_interval_s: float = 0.05,
    follow: bool = False,
    max_trials: Optional[int] = None,
) -> int:
    """Drain queue(s) under ``root``; the ``repro worker`` entry point.

    Claims trials one at a time, runs them under heartbeats, commits
    through the fence.  Returns the number of trials this worker
    *committed* (results it actually landed; fenced-out and released
    attempts do not count).  Without ``follow`` the loop exits once every
    discovered queue is drained; with it, the loop keeps polling for new
    queues forever (serve mode) — send SIGTERM/SIGINT to stop.

    ``max_trials`` is a test hook bounding how many commits this worker
    will make before returning.
    """
    me = owner or worker_identity()
    committed = 0
    observers: Dict[str, LeaseObserver] = {}
    while True:
        queues = _discover_queues(root)
        if not queues and not follow:
            return committed  # nothing to serve (and never will be)
        progressed = False
        all_drained = bool(queues)
        for queue_root in queues:
            manifest = DirQueue._read_json(
                os.path.join(queue_root, "manifest.json")
            )
            if manifest is None:
                continue
            queue = DirQueue(
                queue_root,
                ttl_s=float(manifest.get("ttl_s", 30.0)),
                quarantine_after=int(
                    manifest.get(
                        "quarantine_after", DEFAULT_QUARANTINE_AFTER
                    )
                ),
                max_attempts=int(manifest.get("max_attempts", 2)),
            )
            observer = observers.setdefault(
                queue_root, LeaseObserver(queue.ttl_s)
            )
            heartbeat_s = float(
                manifest.get("heartbeat_s", max(0.01, queue.ttl_s / 5.0))
            )
            timeout_s = manifest.get("trial_timeout_s")
            timeout_s = None if timeout_s is None else float(timeout_s)
            for tid in queue.task_ids():
                if queue.has_result(tid) or queue.has_quarantine(tid):
                    continue
                all_drained = False
                claim = queue.read_claim(tid)
                won: Optional[ClaimState] = None
                try:
                    if claim is None:
                        won = queue.try_claim_fresh(tid, me)
                    elif claim is CLAIM_IN_FLUX:
                        continue
                    elif claim.released:
                        won = queue.try_takeover(tid, me, claim)
                        if won is None:
                            # Lost the race for the next generation — or
                            # its winner died before rewriting the claim
                            # (the orphaned marker would collide forever).
                            # After a full TTL of frozen signature, skip
                            # past whatever it left behind.
                            signature = queue.claim_signature(tid, claim)
                            if observer.expired(tid, signature):
                                won = queue.try_takeover(
                                    tid, me, claim, skip_orphans=True
                                )
                                observer.forget(tid)
                    elif claim.owner != me:
                        signature = queue.claim_signature(tid, claim)
                        if observer.expired(tid, signature):
                            won = queue.try_takeover(
                                tid, me, claim, dead_owner=claim.owner,
                                skip_orphans=True,
                            )
                            observer.forget(tid)
                    else:
                        # Our own live claim with no result can only mean
                        # a previous incarnation — identities are unique
                        # per incarnation, so a peer will reclaim it.
                        continue
                except OSError:
                    continue  # queue briefly unreadable/unwritable
                if won is None:
                    continue
                task = queue.read_task(tid)
                if task is None:
                    continue
                progressed = True
                _run_claimed(
                    queue, tid, task, won, me, heartbeat_s, timeout_s
                )
                if queue.has_result(tid):
                    committed += 1
                    if max_trials is not None and committed >= max_trials:
                        return committed
        if all_drained and not follow:
            return committed
        if not progressed:
            time.sleep(poll_interval_s)


def _queue_worker_entry(root: str, epoch: int) -> None:
    """Multiprocessing target for backend-spawned local workers."""
    # The fork inherits the parent's signal handlers — under the CLI
    # those raise KeyboardInterrupt, which would splatter a traceback
    # when the scheduler terminates drained workers.  A plain death is
    # the contract here; the queue protocol already survives it.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    run_worker_loop(root, owner=worker_identity(epoch))


# -- the scheduling side ------------------------------------------------------


class DirQueueBackend(ExecutionBackend):
    """The ``dir-queue`` execution backend: schedule through a shared dir.

    The parent enqueues every dense spec as a task file, spawns
    ``max_workers`` local worker processes over the queue (any number of
    foreign ``repro worker`` processes on other hosts may join the same
    directory), then *observes*: results and quarantine decisions are
    folded into outcomes and journalled exactly once, observed claims
    are mirrored into the journal as lease records carrying
    host/pid/fencing-token, and a health probe degrades the whole
    campaign one rung down the ladder (``local-supervised``) when the
    directory stops cooperating — unwritable (read-only remount), stat
    latency over budget, or workers dying faster than the respawn
    budget covers.
    """

    name = "dir-queue"

    def run(self, specs, journal=None):  # noqa: C901 - one cohesive loop
        runner = self.runner
        specs = list(specs)
        if not specs:
            return []
        queue_dir = getattr(runner, "queue_dir", None)
        ephemeral = queue_dir is None
        if ephemeral:
            queue_dir = tempfile.mkdtemp(prefix="repro-queue-")
        quarantine_after = int(
            getattr(runner, "quarantine_after", DEFAULT_QUARANTINE_AFTER)
        )
        queue = DirQueue(
            queue_dir,
            ttl_s=runner.lease_ttl_s,
            quarantine_after=quarantine_after,
            max_attempts=runner.max_attempts,
        )
        heartbeat_s = (
            runner.heartbeat_interval_s
            if runner.heartbeat_interval_s is not None
            else max(0.01, runner.lease_ttl_s / 5.0)
        )
        # The manifest identity must survive a scheduler crash + resume:
        # the resumed run hands over a *shorter* dense spec list (holes
        # already journalled), so with a journal the stable campaign
        # fingerprint names the queue, not the spec-set hash.
        manifest_fingerprint = (
            journal.fingerprint
            if journal is not None
            else _specs_fingerprint(specs)
        )
        try:
            queue.setup(
                {
                    "fingerprint": manifest_fingerprint,
                    "trials": len(specs),
                    "ttl_s": runner.lease_ttl_s,
                    "quarantine_after": quarantine_after,
                    "max_attempts": runner.max_attempts,
                    "heartbeat_s": heartbeat_s,
                    "trial_timeout_s": runner.trial_timeout_s,
                }
            )
            # Duplicate keys (a sweep with repeated values) hash to one
            # task id and run once; the single result fans out to every
            # spec index that named it — exactly what serial does, since
            # trials are pure functions of their spec.  Mapping one tid
            # to a single index would strand the other slots as None and
            # spin the scheduling loop forever.
            index_of: Dict[str, List[int]] = {}
            for index, spec in enumerate(specs):
                tid = queue.enqueue(_task_payload(runner, index, spec))
                index_of.setdefault(tid, []).append(index)
            self._plant_ghost_claims(queue, specs, journal)
        except (OSError, pickle.PicklingError, AttributeError, TypeError) as exc:
            # OSError: unusable directory.  The pickle family: specs that
            # cannot cross a file boundary (closures, lambdas) — exactly
            # what the supervised pool's fork context still handles.
            return self._degrade(
                specs, [None] * len(specs), journal,
                reason=f"queue dir unusable: {exc}",
            )
        context = runner._context()
        if context is None:
            return self._degrade(
                specs, [None] * len(specs), journal,
                reason="multiprocessing unavailable",
            )
        return self._schedule(queue, specs, index_of, journal, context)

    # -- scheduling loop ------------------------------------------------------

    def _schedule(self, queue, specs, index_of, journal, context):
        runner = self.runner
        results: List[Optional[TrialOutcome]] = [None] * len(specs)
        emit = getattr(runner, "_emit", None)
        workers: List[Any] = []
        epoch = 0
        respawns_left = RESPAWN_BUDGET_PER_WORKER * runner.max_workers
        seen_results: set = set()
        seen_quarantine: set = set()
        seen_stale: set = set()
        lease_mirror: Dict[str, Tuple[str, int]] = {}
        slow_stats = 0
        degrade_reason = None

        def spawn() -> None:
            nonlocal epoch
            epoch += 1
            process = context.Process(
                target=_queue_worker_entry,
                args=(queue.root, epoch),
                daemon=True,
            )
            process.start()
            workers.append(process)

        try:
            for _ in range(runner.max_workers):
                spawn()
        except Exception as exc:
            return self._degrade(
                specs, results, journal,
                reason=f"cannot spawn queue workers: {exc}",
            )

        try:
            while any(outcome is None for outcome in results):
                # Health probe 1: stat latency on the shared directory.
                before = time.perf_counter()
                try:
                    _stat(queue.root)
                    writable = self._probe_writable(queue.root)
                except OSError:
                    writable = False
                latency = time.perf_counter() - before
                slow_stats = (
                    slow_stats + 1
                    if latency > STAT_LATENCY_BUDGET_S
                    else 0
                )
                if slow_stats >= STAT_LATENCY_STRIKES:
                    degrade_reason = (
                        f"stat latency over budget ({latency:.3f}s)"
                    )
                    break
                if not writable:
                    degrade_reason = "queue dir no longer writable"
                    break

                self._mirror_leases(
                    queue, specs, index_of, journal, lease_mirror
                )
                for marker in queue.stale_markers():
                    if marker in seen_stale:
                        continue
                    seen_stale.add(marker)
                    tid = marker.split(".g", 1)[0]
                    indices = index_of.get(tid)
                    key = specs[indices[0]].key if indices else None
                    runner._record_event(
                        "stale-commit-rejected", key=key, detail=marker
                    )

                progressed = self._collect(
                    queue, specs, index_of, results, journal,
                    seen_results, seen_quarantine, emit,
                )

                # Health probe 2: the worker fleet.
                alive = [p for p in workers if p.is_alive()]
                dead = len(workers) - len(alive)
                workers[:] = alive
                if dead and not queue.drained() and any(
                    outcome is None for outcome in results
                ):
                    for _ in range(dead):
                        if respawns_left <= 0:
                            degrade_reason = (
                                "worker respawn budget exhausted"
                            )
                            break
                        respawns_left -= 1
                        try:
                            spawn()
                        except Exception as exc:
                            degrade_reason = (
                                f"cannot respawn queue worker: {exc}"
                            )
                            break
                    if degrade_reason is not None:
                        break
                if not progressed:
                    time.sleep(runner.poll_interval_s)
        finally:
            for process in workers:
                process.terminate()
            for process in workers:
                process.join()

        if degrade_reason is not None:
            results = self._degrade(
                specs, results, journal, reason=degrade_reason
            )
        return [outcome for outcome in results if outcome is not None]

    @staticmethod
    def _probe_writable(root: str) -> bool:
        probe = os.path.join(root, f".probe.{os.getpid()}")
        try:
            with open(probe, "wb") as handle:
                handle.write(b"x")
            os.unlink(probe)
        except OSError:
            return False
        return True

    def _mirror_leases(
        self, queue, specs, index_of, journal, lease_mirror
    ) -> None:
        """Reflect observed claims into the journal + telemetry.

        The journal is the campaign's single durable narrative; foreign
        workers cannot append to it (it is not shared), so the scheduler
        transcribes what it sees: each new ``(owner, token)`` pair
        becomes a lease record carrying host, pid and fencing token —
        which is exactly what ``repro journal inspect`` then prints.
        """
        runner = self.runner
        for tid, indices in index_of.items():
            claim = queue.read_claim(tid)
            if (
                claim is None
                or claim is CLAIM_IN_FLUX
                or claim.released
                or not claim.owner
            ):
                continue
            signature = (claim.owner, claim.token)
            if lease_mirror.get(tid) == signature:
                continue
            previous = lease_mirror.get(tid)
            lease_mirror[tid] = signature
            key = specs[indices[0]].key
            if journal is not None:
                journal.record_lease(
                    key,
                    claim.owner,
                    claim.attempt,
                    queue.ttl_s,
                    host=claim.host,
                    pid=claim.pid,
                    token=claim.token,
                )
            if previous is None:
                runner._record_event(
                    "claim-won", key=key,
                    detail=f"{claim.owner} token {claim.token}",
                )
            else:
                runner._record_event(
                    "lease-reclaimed", key=key,
                    detail=(
                        f"token {previous[1]} ({previous[0]}) -> "
                        f"token {claim.token} ({claim.owner})"
                    ),
                )

    def _collect(
        self, queue, specs, index_of, results, journal,
        seen_results, seen_quarantine, emit,
    ) -> bool:
        """Fold new results/quarantines into outcomes; True if any did.

        A tid covers every spec index whose key hashed to it (duplicate
        keys share one task), so each decision fans out to all of them —
        per-index records mirror what serial would have reported had it
        run each occurrence itself.
        """
        runner = self.runner
        progressed = False
        for tid, indices in index_of.items():
            if all(results[index] is not None for index in indices):
                continue
            if tid not in seen_results and queue.has_result(tid):
                try:
                    record = queue.read_result(tid)
                except Exception as exc:
                    # A corrupt payload (chaos, torn NFS page): discard
                    # and let the fence hand the trial to a new worker.
                    queue.drop_result(tid)
                    runner._record_event(
                        "result-corrupt",
                        key=specs[indices[0]].key,
                        detail=repr(exc),
                    )
                    continue
                if record is None:
                    continue
                seen_results.add(tid)
                progressed = True
                attempts = int(record.get("attempts", 1))
                wall = float(record.get("wall_clock_s", 0.0))
                for index in indices:
                    spec = specs[index]
                    if record.get("status") == "ok":
                        runner._record(spec.key, attempts, "ok", wall)
                        if journal is not None:
                            journal.record_success(
                                spec.key, record.get("value"), attempts,
                                wall,
                            )
                        results[index] = TrialOutcome(
                            key=spec.key,
                            index=index,
                            value=record.get("value"),
                            attempts=attempts,
                            wall_clock_s=wall,
                        )
                        if emit is not None:
                            emit(results[index])
                    else:
                        error = str(record.get("error", "unknown error"))
                        runner._record(
                            spec.key, attempts, "error", wall, error
                        )
                        if journal is not None:
                            journal.record_failure(
                                spec.key, error, attempts
                            )
                        results[index] = TrialOutcome(
                            key=spec.key,
                            index=index,
                            error=error,
                            attempts=attempts,
                            wall_clock_s=wall,
                        )
            elif tid not in seen_quarantine and queue.has_quarantine(tid):
                record = queue.read_quarantine(tid)
                if record is None:
                    continue
                seen_quarantine.add(tid)
                progressed = True
                owners = list(record.get("owners", ()))
                attempts = int(record.get("attempts", 1))
                error = (
                    f"quarantined: killed {len(owners)} distinct "
                    f"workers ({', '.join(owners)})\n"
                    f"{record.get('traceback', '')}"
                )
                for index in indices:
                    spec = specs[index]
                    runner._record(spec.key, attempts, "error", 0.0, error)
                    runner._record_event(
                        "quarantined", key=spec.key,
                        detail=f"{len(owners)} dead workers",
                    )
                    if journal is not None:
                        journal.record_quarantine(
                            spec.key, owners, attempts,
                            record.get("traceback", ""),
                        )
                    results[index] = TrialOutcome(
                        key=spec.key,
                        index=index,
                        error=error,
                        attempts=attempts,
                        infrastructure=True,
                    )
        return progressed

    def _plant_ghost_claims(self, queue, specs, journal) -> None:
        """Chaos lease contention: pre-claim trials for a foreign ghost.

        The ghost never heartbeats, so its signature freezes and real
        workers must wait a full TTL of local time before winning token
        2 — the contention path exercised end to end.
        """
        runner = self.runner
        if runner.chaos is None:
            return
        for index, spec in enumerate(specs):
            if not runner.chaos.contends_for(index):
                continue
            tid = queue.task_id(spec.key)
            queue.try_claim_fresh(tid, "ghost-host:0:0")
            runner._record_event("lease-contended", key=spec.key)

    # -- degradation ----------------------------------------------------------

    def _degrade(self, specs, results, journal, reason: str):
        """Finish the unfinished trials one rung down, chaos-free."""
        runner = self.runner
        remaining = [
            i for i, outcome in enumerate(results) if outcome is None
        ]
        runner._record_event(
            "degraded",
            detail=(
                f"dir-queue->local-supervised ({len(remaining)} trials: "
                f"{reason})"
            ),
        )
        if journal is not None:
            journal.record_campaign_event(
                "degraded", f"dir-queue->local-supervised: {reason}"
            )
        if not remaining:
            return results
        saved_chaos = runner.chaos
        runner.chaos = None  # the sabotage made its point; finish clean
        try:
            sub = SupervisedBackend(runner).run(
                [specs[i] for i in remaining], journal
            )
        finally:
            runner.chaos = saved_chaos
        for outcome in sub:
            index = remaining[outcome.index]
            results[index] = dataclasses.replace(outcome, index=index)
        return results


def _task_payload(
    runner: TrialRunner, index: int, spec: TrialSpec
) -> Dict[str, Any]:
    """What one task file carries across the process/host boundary.

    The chaos plan rides inside the task (mode for generation 1, the
    kill-every-generation flag) because foreign worker processes do not
    share the runner's memory — sabotage must survive pickling just
    like the trial itself.
    """
    mode = None
    kill_all = False
    if runner.chaos is not None:
        kill_all = index in runner.chaos.kill_all_attempts_on
        mode = runner.chaos.mode_for(index, 1)
        if mode in ("hang", "corrupt"):
            # hang would beat its heart forever (no reclaim) and corrupt
            # detonates in the scheduler, not a worker: both are
            # supervised-backend sabotage, meaningless here.  The trial
            # timeout watchdog covers real hangs.
            mode = None
    return {
        "key": spec.key,
        "fn": spec.fn,
        "args": tuple(spec.args),
        "kwargs": dict(spec.kwargs),
        "index": int(index),
        "chaos_mode": mode,
        "kill_all": kill_all,
    }


def _specs_fingerprint(specs: Sequence[TrialSpec]) -> str:
    """Identity of the trial set, for the queue manifest."""
    digest = hashlib.sha256()
    for spec in specs:
        digest.update(trial_key_id(spec.key).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def ensure_queue_usable(root: str) -> None:
    """Eagerly validate a queue directory (the CLI's early failure path)."""
    if not os.path.isdir(root):
        raise ConfigError(f"queue dir {root!r} does not exist")
    if not os.path.exists(os.path.join(root, "manifest.json")):
        raise TrialError(
            f"queue dir {root!r} has no manifest; start the scheduler "
            "(repro sweep --backend dir-queue / repro serve) first"
        )


# -- registry entries ---------------------------------------------------------


@register("backend", "dir-queue")
def make_dir_queue(runner: TrialRunner) -> ExecutionBackend:
    return DirQueueBackend(runner)


@register("queue", "dir")
def make_dir(root: str, **options: Any) -> DirQueue:
    return DirQueue(root, **options)
