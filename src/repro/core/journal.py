"""Durable trial journal: crash-safe record of a campaign's progress.

The paper's evaluation is hours of repeated ``(spec, seed)`` trials — the
Fig. 4 fundamental diagram alone is 20 trials per density point, and the
Figs. 8-11 protocol comparisons multiply that by protocol and scenario.  A
SIGKILL, OOM or laptop sleep at trial 199/200 should lose *one* trial, not
the campaign.  :class:`TrialJournal` makes that so:

* **append-only JSONL** — one self-contained line per completed trial, so
  a reader never needs to seek and a crash can corrupt at most the final
  line;
* **atomic line writes** — each record is a single ``write()`` of a full
  line, flushed and (by default) ``fsync``-ed before :meth:`record`
  returns, so a record either exists completely or not at all;
* **schema versioning** — the header line carries a schema number; a
  journal written by a future incompatible version is rejected, not
  misread;
* **spec fingerprinting** — the header also carries a SHA-256 fingerprint
  of the campaign definition (scenario + sweep grid + seeds).  Resuming
  against a journal whose fingerprint differs raises
  :class:`~repro.util.errors.JournalCorruptError`: a stale journal is
  rejected, never silently merged;
* **torn-tail tolerance** — the reader drops an incomplete final line (the
  expected residue of a crash mid-write) but treats any earlier damage as
  corruption.

Trial *values* ride inside the JSON line as base64-encoded
zlib-compressed pickles — campaign results (``SimulationResult``, numpy
arrays) are already required to be picklable to cross the worker-process
boundary, so the journal imposes no new constraint.  Compression (level
1) pays for itself: a ``SimulationResult`` shrinks ~3x, and writing +
fsync-ing the smaller line costs less than compressing it cost.

This is the campaign-scope sibling of the run-scope CA checkpoint
(:meth:`repro.ca.nasch.NagelSchreckenberg.state_dict`): the CA checkpoint
resumes *one trajectory* mid-flight, the journal resumes *a whole
campaign* at trial granularity.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
import pickle
import zlib
from typing import Any, Dict, Optional

from repro.util.errors import ConfigError, JournalCorruptError

#: Journal format version.  Bump on any incompatible line-format change.
SCHEMA_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Deterministic JSON for fingerprints and trial-key identities.

    Keys are sorted and separators fixed so the same logical payload always
    produces the same text; objects JSON cannot represent (dataclasses
    already expanded by the caller, numpy scalars, callables) fall back to
    ``repr``, which is stable for everything a campaign definition contains.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=repr
    )


def campaign_fingerprint(**parts: Any) -> str:
    """SHA-256 over the canonical JSON of a campaign's defining parts.

    Callers pass everything that determines the trial grid — the scenario
    (as a plain dict), the swept field and values, trial counts, seeds —
    so two campaigns share a fingerprint exactly when their journals are
    interchangeable.

    The scenario dict should be :meth:`Scenario.to_dict` — the canonical
    serialization shared with scenario files and ``--set`` overrides.  It
    is constructed to canonical-JSON-serialize identically to the
    ``dataclasses.asdict`` form fingerprints used historically, so
    journals recorded through that older path still resume.
    """
    text = canonical_json(parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def trial_key_id(key: Any) -> str:
    """The canonical string identity of one trial key.

    JSON round-trips erase the tuple/list distinction (``(0.2, 3)`` and
    ``[0.2, 3]`` both print as ``[0.2, 3]``), which is exactly the
    equivalence the journal wants: the identity survives serialisation.
    """
    return canonical_json(key)


@dataclasses.dataclass(frozen=True)
class JournalEntry:
    """One completed trial as read back from a journal.

    Attributes:
        key_id: canonical trial-key identity (:func:`trial_key_id`).
        value: the trial function's unpickled return value.
        attempts: attempts the original run needed.
        wall_clock_s: duration of the original successful attempt.
    """

    key_id: str
    value: Any
    attempts: int
    wall_clock_s: float


class TrialJournal:
    """Append-only record of completed trials, safe to resume from.

    Args:
        path: journal file location.
        fingerprint: the campaign's :func:`campaign_fingerprint`.  Written
            into the header of a fresh journal; checked against the header
            of a resumed one.
        resume: when True and ``path`` holds a valid journal for this
            fingerprint, previously completed trials are loaded into
            :attr:`completed` and new records are appended.  When False the
            file is truncated and started fresh.
        fsync: fsync after every record (default).  Turning it off trades
            power-loss durability for speed; an OS crash may then lose the
            tail, but the torn-line-tolerant reader still recovers the rest.
    """

    def __init__(
        self,
        path: str,
        fingerprint: str,
        resume: bool = False,
        fsync: bool = True,
    ) -> None:
        self.path = str(path)
        self.fingerprint = str(fingerprint)
        self._fsync = bool(fsync)
        self._completed: Dict[str, JournalEntry] = {}
        has_content = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if resume and has_content:
            self._completed = read_completed(self.path, self.fingerprint)
            self._file = open(self.path, "ab")
        else:
            self._file = open(self.path, "wb")
            self._write_line(
                {
                    "kind": "header",
                    "schema": SCHEMA_VERSION,
                    "fingerprint": self.fingerprint,
                }
            )

    # -- reading ------------------------------------------------------------

    @property
    def completed(self) -> Dict[str, JournalEntry]:
        """Completed trials loaded at open time, keyed by key identity."""
        return self._completed

    # -- writing ------------------------------------------------------------

    def record_success(
        self, key: Any, value: Any, attempts: int, wall_clock_s: float
    ) -> None:
        """Durably record one completed trial.

        Returns only after the line is on its way to disk (flushed, and
        fsync-ed unless disabled), so a crash immediately after a trial
        completes can no longer lose it.
        """
        payload = base64.b64encode(
            zlib.compress(
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), 1
            )
        ).decode("ascii")
        self._write_line(
            {
                "kind": "trial",
                "key": trial_key_id(key),
                "status": "ok",
                "attempts": int(attempts),
                "wall_clock_s": float(wall_clock_s),
                "value": payload,
            }
        )

    def record_failure(self, key: Any, error: str, attempts: int) -> None:
        """Record a terminally failed trial (observability only).

        Failed trials are *not* added to :attr:`completed` on resume — a
        restarted campaign retries them, which is what you want after
        fixing whatever killed them.
        """
        self._write_line(
            {
                "kind": "trial",
                "key": trial_key_id(key),
                "status": "error",
                "attempts": int(attempts),
                "error": str(error)[:2000],
            }
        )

    def _write_line(self, obj: Dict[str, Any]) -> None:
        # One write() call per full line: the record is either entirely in
        # the OS buffer or entirely absent, and a crash mid-call leaves at
        # worst a torn *final* line, which the reader tolerates.
        line = json.dumps(obj, separators=(",", ":")) + "\n"
        self._file.write(line.encode("utf-8"))
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class _CorruptLine(ValueError):
    """Internal marker: a journal line failed structural validation.

    Caught by :func:`read_completed`'s generic handler so it gets the same
    torn-tail tolerance and line-number wrapping as a JSON parse failure.
    """


def read_completed(
    path: str, expect_fingerprint: Optional[str] = None
) -> Dict[str, JournalEntry]:
    """Read a journal's completed trials, tolerating a torn final line.

    Raises :class:`~repro.util.errors.JournalCorruptError` on a missing or
    malformed header, an unknown schema version, a fingerprint mismatch
    (when ``expect_fingerprint`` is given), or damage anywhere except the
    final line.  Duplicate keys keep the *last* record (a trial re-run
    after a tolerated torn write simply supersedes itself).
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if not data:
        raise JournalCorruptError(f"journal {path!r} is empty")
    lines = data.split(b"\n")
    # A file ending in "\n" splits into [.., b""]; drop that sentinel.  A
    # file NOT ending in "\n" has a torn final line, which stays in the
    # list and is given one chance to parse below.
    tail_is_torn = bool(lines[-1])
    if not tail_is_torn:
        lines.pop()
    entries: Dict[str, JournalEntry] = {}
    for number, raw in enumerate(lines, start=1):
        is_final = number == len(lines)
        try:
            obj = json.loads(raw.decode("utf-8"))
            if not isinstance(obj, dict):
                raise _CorruptLine("journal line is not an object")
            if number == 1:
                _check_header(obj, path, expect_fingerprint)
                continue
            if obj.get("kind") != "trial":
                raise _CorruptLine(
                    f"unexpected line kind {obj.get('kind')!r}"
                )
            if obj.get("status") != "ok":
                continue  # failures are informational; resume retries them
            value = pickle.loads(
                zlib.decompress(base64.b64decode(obj["value"]))
            )
            entries[obj["key"]] = JournalEntry(
                key_id=obj["key"],
                value=value,
                attempts=int(obj.get("attempts", 1)),
                wall_clock_s=float(obj.get("wall_clock_s", 0.0)),
            )
        except JournalCorruptError:
            raise
        except Exception as exc:
            if is_final and tail_is_torn:
                break  # torn tail: the crash the journal exists to survive
            raise JournalCorruptError(
                f"journal {path!r} line {number} is corrupt: {exc}"
            ) from exc
    return entries


def _check_header(
    obj: Dict[str, Any], path: str, expect_fingerprint: Optional[str]
) -> None:
    if obj.get("kind") != "header":
        raise JournalCorruptError(
            f"journal {path!r} does not start with a header line"
        )
    schema = obj.get("schema")
    if schema != SCHEMA_VERSION:
        raise JournalCorruptError(
            f"journal {path!r} has schema {schema!r}; this reader speaks "
            f"schema {SCHEMA_VERSION}"
        )
    if (
        expect_fingerprint is not None
        and obj.get("fingerprint") != expect_fingerprint
    ):
        raise JournalCorruptError(
            f"journal {path!r} belongs to a different campaign "
            f"(fingerprint {obj.get('fingerprint')!r} != expected "
            f"{expect_fingerprint!r}); refusing to merge stale results — "
            "delete the journal or point --journal elsewhere"
        )


def open_journal(
    journal_path: Optional[str],
    fingerprint: str,
    resume: bool,
) -> Optional[TrialJournal]:
    """The campaign entry points' shared journal-opening policy.

    ``None`` path means journaling is off.  ``resume=True`` without a path
    is a contradiction and raises :class:`ConfigError` rather than quietly
    running the campaign from scratch.
    """
    if journal_path is None:
        if resume:
            raise ConfigError("resume=True requires a journal path")
        return None
    return TrialJournal(journal_path, fingerprint, resume=resume)
