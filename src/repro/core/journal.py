"""Durable trial journal: crash-safe record of a campaign's progress.

The paper's evaluation is hours of repeated ``(spec, seed)`` trials — the
Fig. 4 fundamental diagram alone is 20 trials per density point, and the
Figs. 8-11 protocol comparisons multiply that by protocol and scenario.  A
SIGKILL, OOM or laptop sleep at trial 199/200 should lose *one* trial, not
the campaign.  :class:`TrialJournal` makes that so:

* **append-only JSONL** — one self-contained line per completed trial, so
  a reader never needs to seek and a crash can corrupt at most the final
  line;
* **atomic line writes** — each record is a single ``write()`` of a full
  line, flushed and (by default) ``fsync``-ed before :meth:`record`
  returns, so a record either exists completely or not at all;
* **schema versioning** — the header line carries a schema number; a
  journal written by a future incompatible version is rejected, not
  misread;
* **spec fingerprinting** — the header also carries a SHA-256 fingerprint
  of the campaign definition (scenario + sweep grid + seeds).  Resuming
  against a journal whose fingerprint differs raises
  :class:`~repro.util.errors.JournalCorruptError`: a stale journal is
  rejected, never silently merged;
* **torn-tail tolerance** — the reader drops an incomplete final line (the
  expected residue of a crash mid-write) but treats any earlier damage as
  corruption.

Trial *values* ride inside the JSON line as base64-encoded
zlib-compressed pickles — campaign results (``SimulationResult``, numpy
arrays) are already required to be picklable to cross the worker-process
boundary, so the journal imposes no new constraint.  Compression (level
1) pays for itself: a ``SimulationResult`` shrinks ~3x, and writing +
fsync-ing the smaller line costs less than compressing it cost.

This is the campaign-scope sibling of the run-scope CA checkpoint
(:meth:`repro.ca.nasch.NagelSchreckenberg.state_dict`): the CA checkpoint
resumes *one trajectory* mid-flight, the journal resumes *a whole
campaign* at trial granularity.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
import pickle
import time
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.util.errors import ConfigError, JournalCorruptError

#: Journal format version.  Bump on any incompatible line-format change.
#: Lease/heartbeat/event records (the supervised execution backend) and
#: quarantine records (the dir-queue backend's poison-trial parking) ride
#: inside schema 1: older journals simply contain none of them, and the
#: completed-trial reader skips any kind it is not aggregating.
SCHEMA_VERSION = 1

#: Record kinds a schema-1 journal may contain after the header.
RECORD_KINDS = ("trial", "lease", "heartbeat", "event", "quarantine")


def fsync_directory(path: str) -> None:
    """Flush a directory entry to disk (best-effort).

    ``fsync`` on a *file* makes its bytes durable, but the file's very
    existence — a freshly created journal, an atomically renamed claim or
    compacted journal — lives in the parent directory's entry table, which
    has its own cache.  A host power loss between the file fsync and the
    directory flush can resurrect the old directory state, losing the
    rename that the protocol treated as committed.  POSIX durability
    therefore requires fsyncing the directory fd after ``O_CREAT`` /
    ``os.replace``; platforms whose directories cannot be opened or synced
    (some network filesystems) degrade silently, which matches the
    journal's general best-effort durability posture.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # directory fds unsupported here: nothing more we can do
    try:
        os.fsync(fd)
    except OSError:
        return  # fs refuses to sync directories (e.g. some FUSE mounts)
    finally:
        os.close(fd)


def canonical_json(payload: Any) -> str:
    """Deterministic JSON for fingerprints and trial-key identities.

    Keys are sorted and separators fixed so the same logical payload always
    produces the same text; objects JSON cannot represent (dataclasses
    already expanded by the caller, numpy scalars, callables) fall back to
    ``repr``, which is stable for everything a campaign definition contains.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=repr
    )


def campaign_fingerprint(**parts: Any) -> str:
    """SHA-256 over the canonical JSON of a campaign's defining parts.

    Callers pass everything that determines the trial grid — the scenario
    (as a plain dict), the swept field and values, trial counts, seeds —
    so two campaigns share a fingerprint exactly when their journals are
    interchangeable.

    The scenario dict should be :meth:`Scenario.to_dict` — the canonical
    serialization shared with scenario files and ``--set`` overrides.  It
    is constructed to canonical-JSON-serialize identically to the
    ``dataclasses.asdict`` form fingerprints used historically, so
    journals recorded through that older path still resume.
    """
    text = canonical_json(parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def trial_key_id(key: Any) -> str:
    """The canonical string identity of one trial key.

    JSON round-trips erase the tuple/list distinction (``(0.2, 3)`` and
    ``[0.2, 3]`` both print as ``[0.2, 3]``), which is exactly the
    equivalence the journal wants: the identity survives serialisation.
    """
    return canonical_json(key)


@dataclasses.dataclass(frozen=True)
class JournalEntry:
    """One completed trial as read back from a journal.

    Attributes:
        key_id: canonical trial-key identity (:func:`trial_key_id`).
        value: the trial function's unpickled return value.
        attempts: attempts the original run needed.
        wall_clock_s: duration of the original successful attempt.
    """

    key_id: str
    value: Any
    attempts: int
    wall_clock_s: float


@dataclasses.dataclass(frozen=True)
class LeaseRecord:
    """The latest lease on one trial, as read back from a journal.

    A lease is *ownership with an expiry*: the owner claimed the trial up
    to ``deadline_unix`` (wall-clock seconds).  A runner that finds an
    unexpired lease held by someone else must wait it out; an expired
    lease may be reclaimed (with ``attempt + 1``) without risking a
    double-count, because results are only ever taken from ``trial``
    records — the lease merely serialises *who runs it next*.

    Attributes:
        key_id: canonical trial-key identity (:func:`trial_key_id`).
        owner: opaque owner id (host/pid/worker of the claimant).
        attempt: 1-based attempt number this lease covers.
        deadline_unix: wall-clock expiry (``time.time()`` seconds).
        host: claimant hostname, when the backend knows it (dir-queue).
        pid: claimant process id, when known.
        token: monotonic fencing token of the claim generation, when the
            backend fences commits (dir-queue).  A larger token always
            supersedes a smaller one for the same key.
    """

    key_id: str
    owner: str
    attempt: int
    deadline_unix: float
    host: Optional[str] = None
    pid: Optional[int] = None
    token: Optional[int] = None

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the lease has lapsed (``now`` defaults to wall clock)."""
        return (time.time() if now is None else now) >= self.deadline_unix


@dataclasses.dataclass(frozen=True)
class QuarantineRecord:
    """One poison trial parked by the dir-queue backend.

    A trial that keeps *killing its workers* (as opposed to raising a
    clean error, which the retry budget handles) is quarantined after it
    has taken down ``quarantine_after`` distinct workers: retrying it
    forever would starve the queue.  The record captures enough to
    diagnose it offline — the distinct dead owners and the last traceback
    any worker managed to write before dying.

    Attributes:
        key_id: canonical trial-key identity (:func:`trial_key_id`).
        owners: distinct worker identities the trial killed.
        attempts: attempt number the trial had reached when parked.
        traceback: last captured traceback text (may be empty if every
            death was too abrupt to leave one).
    """

    key_id: str
    owners: Tuple[str, ...]
    attempts: int
    traceback: str


class TrialJournal:
    """Append-only record of completed trials, safe to resume from.

    Args:
        path: journal file location.
        fingerprint: the campaign's :func:`campaign_fingerprint`.  Written
            into the header of a fresh journal; checked against the header
            of a resumed one.
        resume: when True and ``path`` holds a valid journal for this
            fingerprint, previously completed trials are loaded into
            :attr:`completed` and new records are appended.  When False the
            file is truncated and started fresh.
        fsync: fsync after every record (default).  Turning it off trades
            power-loss durability for speed; an OS crash may then lose the
            tail, but the torn-line-tolerant reader still recovers the rest.
    """

    def __init__(
        self,
        path: str,
        fingerprint: str,
        resume: bool = False,
        fsync: bool = True,
    ) -> None:
        self.path = str(path)
        self.fingerprint = str(fingerprint)
        self._fsync = bool(fsync)
        self._completed: Dict[str, JournalEntry] = {}
        self._leases: Dict[str, LeaseRecord] = {}
        self._quarantined: Dict[str, QuarantineRecord] = {}
        has_content = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if resume and has_content:
            self._completed = read_completed(self.path, self.fingerprint)
            self._leases = read_lease_state(self.path, self.fingerprint)
            self._quarantined = read_quarantine(self.path, self.fingerprint)
            self._file = open(self.path, "ab")
        else:
            self._file = open(self.path, "wb")
            self._write_line(
                {
                    "kind": "header",
                    "schema": SCHEMA_VERSION,
                    "fingerprint": self.fingerprint,
                }
            )
            if self._fsync:
                # The header fsync made the *bytes* durable; the journal's
                # existence itself lives in the parent directory entry.
                fsync_directory(
                    os.path.dirname(os.path.abspath(self.path)) or "."
                )

    # -- reading ------------------------------------------------------------

    @property
    def completed(self) -> Dict[str, JournalEntry]:
        """Completed trials loaded at open time, keyed by key identity."""
        return self._completed

    @property
    def leases(self) -> Dict[str, LeaseRecord]:
        """Live lease state: latest lease per *incomplete* trial key.

        Loaded from the file on resume, then kept current as this
        process records leases and trial completions of its own.
        """
        return self._leases

    @property
    def quarantined(self) -> Dict[str, QuarantineRecord]:
        """Quarantined (poison) trials, keyed by key identity.

        A resuming runner must neither re-run these (they keep killing
        workers) nor count them completed — they surface as terminal
        infrastructure failures until a human un-parks them.
        """
        return self._quarantined

    # -- writing ------------------------------------------------------------

    def record_success(
        self, key: Any, value: Any, attempts: int, wall_clock_s: float
    ) -> None:
        """Durably record one completed trial.

        Returns only after the line is on its way to disk (flushed, and
        fsync-ed unless disabled), so a crash immediately after a trial
        completes can no longer lose it.
        """
        payload = base64.b64encode(
            zlib.compress(
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), 1
            )
        ).decode("ascii")
        key_id = trial_key_id(key)
        self._write_line(
            {
                "kind": "trial",
                "key": key_id,
                "status": "ok",
                "attempts": int(attempts),
                "wall_clock_s": float(wall_clock_s),
                "value": payload,
            }
        )
        self._leases.pop(key_id, None)  # completion releases the lease

    def record_failure(self, key: Any, error: str, attempts: int) -> None:
        """Record a terminally failed trial (observability only).

        Failed trials are *not* added to :attr:`completed` on resume — a
        restarted campaign retries them, which is what you want after
        fixing whatever killed them.
        """
        key_id = trial_key_id(key)
        self._write_line(
            {
                "kind": "trial",
                "key": key_id,
                "status": "error",
                "attempts": int(attempts),
                "error": str(error)[:2000],
            }
        )
        self._leases.pop(key_id, None)  # terminal failure releases it too

    # -- supervision records -------------------------------------------------

    def record_lease(
        self,
        key: Any,
        owner: str,
        attempt: int,
        ttl_s: float,
        deadline_unix: Optional[float] = None,
        host: Optional[str] = None,
        pid: Optional[int] = None,
        token: Optional[int] = None,
    ) -> LeaseRecord:
        """Durably claim (or extend/reclaim) one trial for ``owner``.

        Appends an append-only ``lease`` record — later records supersede
        earlier ones for the same key, so grant, deadline extension and
        reclaim are all the same operation with different ``attempt`` /
        deadline values.  ``host``/``pid``/``token`` carry the dir-queue
        backend's claimant identity and fencing token when known; the
        keys are simply absent from journals written by backends that do
        not fence.  Returns the resulting :class:`LeaseRecord` and keeps
        :attr:`leases` current.
        """
        deadline = (
            time.time() + float(ttl_s)
            if deadline_unix is None
            else float(deadline_unix)
        )
        key_id = trial_key_id(key)
        line: Dict[str, Any] = {
            "kind": "lease",
            "key": key_id,
            "owner": str(owner),
            "attempt": int(attempt),
            "deadline": deadline,
        }
        if host is not None:
            line["host"] = str(host)
        if pid is not None:
            line["pid"] = int(pid)
        if token is not None:
            line["token"] = int(token)
        self._write_line(line)
        lease = LeaseRecord(
            key_id=key_id,
            owner=str(owner),
            attempt=int(attempt),
            deadline_unix=deadline,
            host=None if host is None else str(host),
            pid=None if pid is None else int(pid),
            token=None if token is None else int(token),
        )
        self._leases[key_id] = lease
        return lease

    def record_quarantine(
        self,
        key: Any,
        owners: List[str],
        attempts: int,
        traceback_text: str = "",
    ) -> QuarantineRecord:
        """Durably park a poison trial that keeps killing workers.

        Releases any live lease on the key (the trial will not be run
        again) and keeps :attr:`quarantined` current.  The record is
        fsync-ed like a trial record: losing a quarantine decision to a
        power cut would put the poison trial straight back on the queue.
        """
        key_id = trial_key_id(key)
        distinct = tuple(dict.fromkeys(str(owner) for owner in owners))
        self._write_line(
            {
                "kind": "quarantine",
                "key": key_id,
                "owners": list(distinct),
                "attempts": int(attempts),
                "traceback": str(traceback_text)[:8000],
            }
        )
        record = QuarantineRecord(
            key_id=key_id,
            owners=distinct,
            attempts=int(attempts),
            traceback=str(traceback_text)[:8000],
        )
        self._leases.pop(key_id, None)  # quarantine releases the lease
        self._quarantined[key_id] = record
        return record

    def record_heartbeat(self, key: Any, owner: str, seq: int) -> None:
        """Record one observed worker heartbeat (observability only).

        Heartbeats are progress evidence, not results, so they skip the
        fsync — losing the tail of a heartbeat stream to a power cut
        changes nothing about what can be resumed.
        """
        self._write_line(
            {
                "kind": "heartbeat",
                "key": trial_key_id(key),
                "owner": str(owner),
                "seq": int(seq),
                "t": time.time(),
            },
            fsync=False,
        )

    def record_campaign_event(self, event: str, detail: str = "") -> None:
        """Record a campaign-level event (e.g. a backend degradation).

        These lines are what makes an after-the-fact ``repro journal
        inspect`` able to say *why* a supervised campaign finished on a
        lesser backend instead of crashing.
        """
        self._write_line(
            {
                "kind": "event",
                "event": str(event),
                "detail": str(detail)[:2000],
                "t": time.time(),
            }
        )

    def _write_line(
        self, obj: Dict[str, Any], fsync: Optional[bool] = None
    ) -> None:
        # One write() call per full line: the record is either entirely in
        # the OS buffer or entirely absent, and a crash mid-call leaves at
        # worst a torn *final* line, which the reader tolerates.
        line = json.dumps(obj, separators=(",", ":")) + "\n"
        self._file.write(line.encode("utf-8"))
        self._file.flush()
        if self._fsync if fsync is None else fsync:
            os.fsync(self._file.fileno())

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class _CorruptLine(ValueError):
    """Internal marker: a journal line failed structural validation.

    Caught by :func:`read_completed`'s generic handler so it gets the same
    torn-tail tolerance and line-number wrapping as a JSON parse failure.
    """


def read_completed(
    path: str, expect_fingerprint: Optional[str] = None
) -> Dict[str, JournalEntry]:
    """Read a journal's completed trials, tolerating a torn final line.

    Raises :class:`~repro.util.errors.JournalCorruptError` on a missing or
    malformed header, an unknown schema version, a fingerprint mismatch
    (when ``expect_fingerprint`` is given), or damage anywhere except the
    final line.  Duplicate keys keep the *last* record (a trial re-run
    after a tolerated torn write simply supersedes itself).
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if not data:
        raise JournalCorruptError(f"journal {path!r} is empty")
    lines = data.split(b"\n")
    # A file ending in "\n" splits into [.., b""]; drop that sentinel.  A
    # file NOT ending in "\n" has a torn final line, which stays in the
    # list and is given one chance to parse below.
    tail_is_torn = bool(lines[-1])
    if not tail_is_torn:
        lines.pop()
    entries: Dict[str, JournalEntry] = {}
    for number, raw in enumerate(lines, start=1):
        is_final = number == len(lines)
        try:
            obj = json.loads(raw.decode("utf-8"))
            if not isinstance(obj, dict):
                raise _CorruptLine("journal line is not an object")
            if number == 1:
                _check_header(obj, path, expect_fingerprint)
                continue
            if obj.get("kind") in ("lease", "heartbeat", "event", "quarantine"):
                continue  # supervision records; not completed trials
            if obj.get("kind") != "trial":
                raise _CorruptLine(
                    f"unexpected line kind {obj.get('kind')!r}"
                )
            if obj.get("status") != "ok":
                continue  # failures are informational; resume retries them
            value = pickle.loads(
                zlib.decompress(base64.b64decode(obj["value"]))
            )
            entries[obj["key"]] = JournalEntry(
                key_id=obj["key"],
                value=value,
                attempts=int(obj.get("attempts", 1)),
                wall_clock_s=float(obj.get("wall_clock_s", 0.0)),
            )
        except JournalCorruptError:
            raise
        except Exception as exc:
            if is_final and tail_is_torn:
                break  # torn tail: the crash the journal exists to survive
            raise JournalCorruptError(
                f"journal {path!r} line {number} is corrupt: {exc}"
            ) from exc
    return entries


def _check_header(
    obj: Dict[str, Any], path: str, expect_fingerprint: Optional[str]
) -> None:
    if obj.get("kind") != "header":
        raise JournalCorruptError(
            f"journal {path!r} does not start with a header line"
        )
    schema = obj.get("schema")
    if schema != SCHEMA_VERSION:
        raise JournalCorruptError(
            f"journal {path!r} has schema {schema!r}; this reader speaks "
            f"schema {SCHEMA_VERSION}"
        )
    if (
        expect_fingerprint is not None
        and obj.get("fingerprint") != expect_fingerprint
    ):
        raise JournalCorruptError(
            f"journal {path!r} belongs to a different campaign "
            f"(fingerprint {obj.get('fingerprint')!r} != expected "
            f"{expect_fingerprint!r}); refusing to merge stale results — "
            "delete the journal or point --journal elsewhere"
        )


def scan_records(
    path: str, expect_fingerprint: Optional[str] = None
) -> Tuple[Dict[str, Any], List[Tuple[bytes, Dict[str, Any]]], bool]:
    """Low-level journal scan: ``(header, [(raw_line, record)], torn)``.

    The raw line bytes ride along with each parsed record so tools that
    rewrite journals (:func:`compact_journal`) can keep surviving lines
    byte-identical instead of re-encoding pickled payloads.  Same
    validation and torn-tail policy as :func:`read_completed`; unknown
    record kinds are corruption, a torn final line is tolerated and
    reported via the returned flag.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise ConfigError(f"cannot read journal {path!r}: {exc}") from exc
    if not data:
        raise JournalCorruptError(f"journal {path!r} is empty")
    lines = data.split(b"\n")
    tail_is_torn = bool(lines[-1])
    if not tail_is_torn:
        lines.pop()
    header: Dict[str, Any] = {}
    records: List[Tuple[bytes, Dict[str, Any]]] = []
    torn = False
    for number, raw in enumerate(lines, start=1):
        is_final = number == len(lines)
        try:
            obj = json.loads(raw.decode("utf-8"))
            if not isinstance(obj, dict):
                raise _CorruptLine("journal line is not an object")
            if number == 1:
                _check_header(obj, path, expect_fingerprint)
                header = obj
                continue
            if obj.get("kind") not in RECORD_KINDS:
                raise _CorruptLine(
                    f"unexpected line kind {obj.get('kind')!r}"
                )
            records.append((raw, obj))
        except JournalCorruptError:
            raise
        except Exception as exc:
            if is_final and tail_is_torn:
                torn = True
                break
            raise JournalCorruptError(
                f"journal {path!r} line {number} is corrupt: {exc}"
            ) from exc
    return header, records, torn


def read_lease_state(
    path: str, expect_fingerprint: Optional[str] = None
) -> Dict[str, LeaseRecord]:
    """Live leases of a journal: latest lease per *incomplete* trial key.

    A ``trial`` record (success or terminal failure) releases the key's
    lease; later lease records supersede earlier ones.  What remains is
    exactly the set of claims a resuming runner must arbitrate: wait out
    the unexpired ones, reclaim the expired ones.
    """
    _header, records, _torn = scan_records(path, expect_fingerprint)
    leases: Dict[str, LeaseRecord] = {}
    for _raw, obj in records:
        kind = obj.get("kind")
        if kind == "lease":
            pid = obj.get("pid")
            token = obj.get("token")
            leases[obj["key"]] = LeaseRecord(
                key_id=obj["key"],
                owner=str(obj.get("owner", "?")),
                attempt=int(obj.get("attempt", 1)),
                deadline_unix=float(obj.get("deadline", 0.0)),
                host=obj.get("host"),
                pid=None if pid is None else int(pid),
                token=None if token is None else int(token),
            )
        elif kind in ("trial", "quarantine"):
            leases.pop(obj["key"], None)
    return leases


def read_quarantine(
    path: str, expect_fingerprint: Optional[str] = None
) -> Dict[str, QuarantineRecord]:
    """Quarantined trials of a journal, keyed by key identity.

    Later quarantine records supersede earlier ones for the same key (a
    re-quarantine after a manual un-park); an ``ok`` trial record lifts
    the quarantine — the operator evidently fixed and re-ran it.
    """
    _header, records, _torn = scan_records(path, expect_fingerprint)
    parked: Dict[str, QuarantineRecord] = {}
    for _raw, obj in records:
        kind = obj.get("kind")
        if kind == "quarantine":
            parked[obj["key"]] = QuarantineRecord(
                key_id=obj["key"],
                owners=tuple(
                    str(owner) for owner in obj.get("owners", ())
                ),
                attempts=int(obj.get("attempts", 1)),
                traceback=str(obj.get("traceback", "")),
            )
        elif kind == "trial" and obj.get("status") == "ok":
            parked.pop(obj["key"], None)
    return parked


@dataclasses.dataclass(frozen=True)
class JournalStats:
    """What ``repro journal inspect`` reports about one journal file.

    Attributes:
        path: the file inspected.
        fingerprint: campaign fingerprint from the header.
        schema: schema version from the header.
        size_bytes: file size on disk.
        records: total records after the header (surviving lines).
        trials_ok / trials_failed: terminal trial records by status.
        distinct_completed: distinct keys with at least one ok record.
        leases: lease records in the file (grants + extensions + reclaims).
        live_leases: keys still holding an unreleased lease.
        expired_leases: of those, how many have lapsed (reclaimable).
        heartbeats: heartbeat records.
        events: campaign-event records (e.g. backend degradations).
        quarantined: trials currently parked as poison (latest state).
        superseded: records a :func:`compact_journal` pass would drop.
        torn_tail: whether the file ends in a torn (crash-residue) line.
    """

    path: str
    fingerprint: str
    schema: int
    size_bytes: int
    records: int
    trials_ok: int
    trials_failed: int
    distinct_completed: int
    leases: int
    live_leases: int
    expired_leases: int
    heartbeats: int
    events: int
    superseded: int
    torn_tail: bool
    quarantined: int = 0


def _partition_records(records):
    """Split a record stream into what compaction keeps and drops.

    Keeps, in original order: the last ``ok`` trial record per key (or
    the last failure record for keys that never succeeded), the latest
    lease per still-leased key, the latest quarantine per still-parked
    key, and every ``event`` record.  Drops every heartbeat and
    everything superseded.  Returns ``(kept_raw_lines, num_superseded,
    aggregates)`` where aggregates back :class:`JournalStats`.
    """
    last_trial: Dict[str, int] = {}  # key -> index of record to keep
    key_succeeded: Dict[str, bool] = {}
    lease_latest: Dict[str, int] = {}
    quarantine_latest: Dict[str, int] = {}
    counts = {
        "trials_ok": 0, "trials_failed": 0, "leases": 0,
        "heartbeats": 0, "events": 0,
    }
    for position, (_raw, obj) in enumerate(records):
        kind = obj.get("kind")
        if kind == "trial":
            key = obj["key"]
            ok = obj.get("status") == "ok"
            counts["trials_ok" if ok else "trials_failed"] += 1
            if ok or not key_succeeded.get(key, False):
                last_trial[key] = position
            key_succeeded[key] = key_succeeded.get(key, False) or ok
            lease_latest.pop(key, None)  # trial record releases the lease
            if ok:
                quarantine_latest.pop(key, None)  # success lifts quarantine
        elif kind == "lease":
            counts["leases"] += 1
            lease_latest[obj["key"]] = position
        elif kind == "heartbeat":
            counts["heartbeats"] += 1
        elif kind == "event":
            counts["events"] += 1
        elif kind == "quarantine":
            key = obj["key"]
            quarantine_latest[key] = position
            lease_latest.pop(key, None)  # quarantine releases the lease
    keep = (
        set(last_trial.values())
        | set(lease_latest.values())
        | set(quarantine_latest.values())
    )
    kept = [
        raw
        for position, (raw, obj) in enumerate(records)
        if position in keep or obj.get("kind") == "event"
    ]
    counts["distinct_completed"] = sum(
        1 for succeeded in key_succeeded.values() if succeeded
    )
    counts["quarantined"] = len(quarantine_latest)
    return kept, len(records) - len(kept), counts


def inspect_journal(path: str) -> JournalStats:
    """Summarise a journal file without loading any trial values."""
    header, records, torn = scan_records(path)
    kept, superseded, counts = _partition_records(records)
    live = read_lease_state(path)
    expired = sum(1 for lease in live.values() if lease.expired())
    return JournalStats(
        path=str(path),
        fingerprint=str(header.get("fingerprint", "?")),
        schema=int(header.get("schema", -1)),
        size_bytes=os.path.getsize(path),
        records=len(records),
        trials_ok=counts["trials_ok"],
        trials_failed=counts["trials_failed"],
        distinct_completed=counts["distinct_completed"],
        leases=counts["leases"],
        live_leases=len(live),
        expired_leases=expired,
        heartbeats=counts["heartbeats"],
        events=counts["events"],
        superseded=superseded,
        torn_tail=torn,
        quarantined=counts["quarantined"],
    )


def compact_journal(
    path: str, output: Optional[str] = None
) -> Tuple[int, int]:
    """Rewrite a journal without its superseded records, atomically.

    Long supervised campaigns append a lease record per grant/extension
    and a heartbeat stream per worker; none of that is needed once the
    trials it supervised are complete.  Compaction keeps the header, the
    terminal trial record per key, the latest lease per still-incomplete
    key, and every event record — every surviving line byte-identical to
    the original, so resuming from the compacted journal is exactly
    resuming from the original.

    Writes to a temp file in the same directory, fsyncs, then
    ``os.replace``-es over ``output`` (default: in place) — a crash
    mid-compaction leaves the original journal untouched.  A torn final
    line is dropped (it was unreadable anyway).  Returns
    ``(bytes_before, bytes_after)``.
    """
    header, records, _torn = scan_records(path)
    kept, _superseded, _counts = _partition_records(records)
    destination = str(output) if output is not None else str(path)
    before = os.path.getsize(path)
    header_line = (
        json.dumps(header, separators=(",", ":")).encode("utf-8") + b"\n"
    )
    directory = os.path.dirname(os.path.abspath(destination)) or "."
    temp_path = os.path.join(
        directory, f".{os.path.basename(destination)}.compact.tmp"
    )
    with open(temp_path, "wb") as handle:
        handle.write(header_line)
        for raw in kept:
            handle.write(raw + b"\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, destination)
    # The rename itself lives in the directory entry: flush it, or a
    # power cut can resurrect the uncompacted file *and* the temp file.
    fsync_directory(directory)
    return before, os.path.getsize(destination)


def open_journal(
    journal_path: Optional[str],
    fingerprint: str,
    resume: bool,
) -> Optional[TrialJournal]:
    """The campaign entry points' shared journal-opening policy.

    ``None`` path means journaling is off.  ``resume=True`` without a path
    is a contradiction and raises :class:`ConfigError` rather than quietly
    running the campaign from scratch.
    """
    if journal_path is None:
        if resume:
            raise ConfigError("resume=True requires a journal path")
        return None
    return TrialJournal(journal_path, fingerprint, resume=resume)
