"""Crash-safe campaign scheduling: the ``repro serve`` spool.

A campaign server turns a directory into a durable job spool.  Submitters
drop sweep-shaped job envelopes (scenario JSON plus a swept field) into
``incoming/``; the scheduler claims each by atomic rename into
``active/``, materialises it as a dir-queue campaign under ``jobs/``, and
streams per-trial outcomes to an append-only ``results.jsonl`` that
``repro attach`` can tail from any host sharing the directory.  Every
durable step is an atomic rename or an fsync'd journal append, so killing
the scheduler at any instant — SIGTERM, SIGKILL, power loss — loses
nothing: on restart it rescans ``active/`` before ``incoming/`` and
resumes each interrupted job from its journal, re-running only trials the
journal does not already hold.

Spool layout::

    spool/
      incoming/<name>.json   job envelopes awaiting the scheduler
      active/<name>.json     claimed envelopes (scheduler owns them)
      done/<name>.json       finished envelopes
      failed/<name>.json     envelopes that could not run (+ .error.txt)
      jobs/<job_id>/
        job.json             resolved envelope + campaign fingerprint
        journal.jsonl        the per-trial journal — the source of truth
        queue/               dir-queue tasks; any host's worker may drain
        results.jsonl        incremental outcome stream (a resume renames
                             a journal-rebuilt file over it; tails detect
                             the swap and dedupe by key, so every trial
                             is yielded exactly once)
        done                 terminal marker holding the job summary

The job envelope is the declarative sweep form::

    {"scenario": {...Scenario.to_dict()...},
     "field": "num_nodes", "values": [20, 30, 40], "trials": 5,
     "max_workers": 4, "trial_timeout_s": 120.0, "max_attempts": 2}

``scenario``/``field``/``values`` are required; the rest default like
:func:`repro.core.sweep.sweep_scenario`.  The job id is derived from the
campaign fingerprint, so resubmitting an identical envelope resumes the
same job directory instead of re-running finished trials.

Execution rides the ``dir-queue`` backend (:mod:`repro.core.distq`): the
scheduler spawns local workers, and any ``repro worker --follow`` pointed
at the spool picks up each job's queue as it appears — that is the
multi-host path.  The backend's degradation ladder still applies, so a
read-only or pathologically slow shared directory degrades the job to
supervised local execution rather than wedging the spool.
"""

from __future__ import annotations

import asyncio
import base64
import dataclasses
import json
import os
import pickle
import threading
import time
import zlib
from typing import (
    Any, AsyncIterator, Dict, Iterator, List, Mapping, Optional, Sequence,
)

from repro.core.config import SCENARIO_FORMAT, SCENARIO_SCHEMA, Scenario
from repro.core.journal import (
    TrialJournal, campaign_fingerprint, open_journal,
)
from repro.core.runner import TrialOutcome, TrialRunner, TrialSpec
from repro.core.sweep import _run_scenario_trial
from repro.metrics.collector import CampaignTelemetry
from repro.util.errors import ConfigError

SPOOL_SUBDIRS = ("incoming", "active", "done", "failed", "jobs")

#: Fields a job envelope may carry beyond the required three.
_OPTIONAL_ENVELOPE_KEYS = (
    "trials", "max_workers", "trial_timeout_s", "max_attempts", "name",
)

_DONE_MARKER = "done"


# -- envelopes ----------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class JobEnvelope:
    """One parsed, validated job submission.

    Attributes:
        scenario: the base :class:`Scenario` the sweep varies.
        field: the swept Scenario field name.
        values: the swept values, in order.
        trials: seeds per value (>= 1).
        max_workers: dir-queue worker processes the scheduler spawns.
        trial_timeout_s: per-attempt wall-clock bound (``None`` = none).
        max_attempts: total tries per trial.
        fingerprint: the campaign fingerprint — identical envelopes share
            it, which is what makes resubmission resume instead of redo.
    """

    scenario: Scenario
    field: str
    values: tuple
    trials: int
    max_workers: int
    trial_timeout_s: Optional[float]
    max_attempts: int
    fingerprint: str

    @property
    def job_id(self) -> str:
        """Directory-name identity under ``jobs/`` (fingerprint prefix)."""
        return self.fingerprint[:16]


def parse_envelope(data: Mapping[str, Any]) -> JobEnvelope:
    """Validate a raw envelope mapping into a :class:`JobEnvelope`.

    Unknown keys and missing required keys raise :class:`ConfigError`
    naming them, so a typo in a submission fails in ``failed/`` with a
    readable error instead of silently sweeping defaults.
    """
    if not isinstance(data, Mapping):
        raise ConfigError(
            f"job envelope must be a JSON object, got {type(data).__name__}"
        )
    required = ("scenario", "field", "values")
    missing = sorted(key for key in required if key not in data)
    if missing:
        raise ConfigError(f"job envelope missing keys: {missing}")
    unknown = sorted(
        set(data) - set(required) - set(_OPTIONAL_ENVELOPE_KEYS)
    )
    if unknown:
        raise ConfigError(f"job envelope has unknown keys: {unknown}")
    scenario_data = data["scenario"]
    if isinstance(scenario_data, Mapping):
        # Accept a Scenario.save() file pasted in whole: strip (and
        # check) its format/schema header, exactly like Scenario.load.
        scenario_data = dict(scenario_data)
        fmt = scenario_data.pop("format", SCENARIO_FORMAT)
        if fmt != SCENARIO_FORMAT:
            raise ConfigError(
                f"envelope scenario has format {fmt!r}; expected "
                f"{SCENARIO_FORMAT!r}"
            )
        schema = scenario_data.pop("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ConfigError(
                f"envelope scenario has schema {schema!r}; this reader "
                f"speaks schema {SCENARIO_SCHEMA}"
            )
    scenario = Scenario.from_dict(scenario_data)
    field = str(data["field"])
    if field not in {f.name for f in dataclasses.fields(Scenario)}:
        raise ConfigError(f"{field!r} is not a Scenario field")
    values = tuple(data["values"])
    if not values:
        raise ConfigError("job envelope 'values' must be non-empty")
    trials = int(data.get("trials", 1))
    if trials < 1:
        raise ConfigError(f"trials must be >= 1, got {trials}")
    max_workers = int(data.get("max_workers", 2))
    if max_workers < 1:
        raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
    timeout = data.get("trial_timeout_s")
    timeout = None if timeout is None else float(timeout)
    max_attempts = int(data.get("max_attempts", 2))
    scenario.validate()
    fingerprint = campaign_fingerprint(
        kind="sweep",
        scenario=scenario.to_dict(),
        field=field,
        values=list(values),
        trials=trials,
    )
    return JobEnvelope(
        scenario=scenario,
        field=field,
        values=values,
        trials=trials,
        max_workers=max_workers,
        trial_timeout_s=timeout,
        max_attempts=max_attempts,
        fingerprint=fingerprint,
    )


def build_specs(envelope: JobEnvelope) -> List[TrialSpec]:
    """The ``(value, trial)`` spec grid — identical to ``sweep_scenario``.

    Sharing the grid construction (and the module-level trial function)
    with :mod:`repro.core.sweep` is what makes a served job's journal
    interchangeable with a locally-run sweep's: same keys, same seeds,
    same fingerprint, bit-identical values.
    """
    specs = []
    for value in envelope.values:
        for trial in range(envelope.trials):
            scenario = dataclasses.replace(
                envelope.scenario,
                **{
                    envelope.field: value,
                    "seed": envelope.scenario.seed + 1000 * trial,
                },
            )
            specs.append(
                TrialSpec(
                    key=(value, trial),
                    fn=_run_scenario_trial,
                    args=(scenario,),
                )
            )
    return specs


# -- spool primitives ---------------------------------------------------------


def ensure_spool(spool: str) -> None:
    """Create the spool directory skeleton (idempotent)."""
    for name in SPOOL_SUBDIRS:
        os.makedirs(os.path.join(spool, name), exist_ok=True)


def submit_job(
    spool: str, envelope: Mapping[str, Any], name: Optional[str] = None
) -> str:
    """Drop one job envelope into ``incoming/``; returns its spool name.

    The write is atomic (tmp + rename), so a scheduler polling the spool
    never reads a half-written envelope.  ``name`` defaults to the job id
    derived from the envelope's fingerprint.
    """
    parsed = parse_envelope(envelope)  # fail the submitter, not the server
    ensure_spool(spool)
    name = name or parsed.job_id
    if "/" in name or name.startswith("."):
        raise ConfigError(f"invalid job name {name!r}")
    final = os.path.join(spool, "incoming", f"{name}.json")
    tmp = final + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(dict(envelope), handle, indent=2, default=str)
        handle.write("\n")
    os.replace(tmp, final)
    return name


def _encode_value(value: Any) -> str:
    """Journal-style compact pickle encoding for one outcome value."""
    return base64.b64encode(
        zlib.compress(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), 1)
    ).decode("ascii")


def decode_result_value(record: Mapping[str, Any]) -> Any:
    """The trial value carried by one ``results.jsonl`` record."""
    encoded = record.get("value")
    if encoded is None:
        return None
    return pickle.loads(zlib.decompress(base64.b64decode(encoded)))


def outcome_record(outcome: TrialOutcome) -> Dict[str, Any]:
    """The ``results.jsonl`` wire form of one :class:`TrialOutcome`."""
    return {
        "key": list(outcome.key) if isinstance(
            outcome.key, (tuple, list)
        ) else outcome.key,
        "ok": outcome.ok,
        "attempts": outcome.attempts,
        "wall_clock_s": outcome.wall_clock_s,
        "error": outcome.error,
        "infrastructure": outcome.infrastructure,
        "value": _encode_value(outcome.value) if outcome.ok else None,
    }


# -- the scheduler ------------------------------------------------------------


class CampaignServer:
    """The ``repro serve`` scheduler: drain a spool of job envelopes.

    Args:
        spool: the spool directory (created if absent).
        telemetry: optional shared :class:`CampaignTelemetry` receiving
            every job's trial records and supervision events.
        poll_interval_s: idle sleep between spool scans in
            :meth:`serve_forever`.

    The scheduler holds **no state outside the spool**: which jobs exist,
    which are mid-flight, and which trials each has finished all live in
    directory entries and journals.  That is the crash-safety contract —
    a new scheduler process pointed at the same spool continues exactly
    where a killed one stopped.
    """

    def __init__(
        self,
        spool: str,
        telemetry: Optional[CampaignTelemetry] = None,
        poll_interval_s: float = 0.2,
    ) -> None:
        self.spool = str(spool)
        self.telemetry = telemetry
        self.poll_interval_s = float(poll_interval_s)
        ensure_spool(self.spool)

    # -- public API ---------------------------------------------------------

    def run_once(self) -> int:
        """One scheduling pass: recover ``active/``, then claim ``incoming/``.

        Returns the number of jobs run to a terminal state (done or
        failed).  Recovery runs first so a crashed scheduler's in-flight
        jobs finish before any new submission starts.
        """
        finished = 0
        for name in self._spool_names("active"):
            finished += self._run_named_job(name)
        for name in self._spool_names("incoming"):
            if self._claim(name):
                finished += self._run_named_job(name)
        return finished

    def serve_forever(self, stop: Optional[threading.Event] = None) -> int:
        """Poll the spool until ``stop`` is set; returns total jobs run.

        The stop event is checked between jobs, not mid-job — but because
        every durable step is crash-safe, hard termination (SIGTERM with
        the default handler, SIGKILL) is also an acceptable shutdown: the
        next scheduler resumes from the journals.
        """
        total = 0
        while stop is None or not stop.is_set():
            ran = self.run_once()
            total += ran
            if ran == 0:
                if stop is not None and stop.wait(self.poll_interval_s):
                    break
                if stop is None:
                    time.sleep(self.poll_interval_s)
        return total

    def job_dir(self, job_id: str) -> str:
        """The working directory of one job."""
        return os.path.join(self.spool, "jobs", job_id)

    # -- spool mechanics ----------------------------------------------------

    def _spool_names(self, state: str) -> List[str]:
        try:
            entries = sorted(os.listdir(os.path.join(self.spool, state)))
        except OSError:
            return []
        return [
            entry[: -len(".json")]
            for entry in entries
            if entry.endswith(".json")
        ]

    def _claim(self, name: str) -> bool:
        """Move one envelope incoming -> active; False if someone beat us."""
        source = os.path.join(self.spool, "incoming", f"{name}.json")
        target = os.path.join(self.spool, "active", f"{name}.json")
        try:
            os.replace(source, target)
        except OSError:
            return False  # claimed by a concurrent scheduler, or withdrawn
        return True

    def _finish(self, name: str, state: str, error: Optional[str]) -> None:
        """Move one active envelope to its terminal spool state."""
        source = os.path.join(self.spool, "active", f"{name}.json")
        target = os.path.join(self.spool, state, f"{name}.json")
        if error is not None:
            with open(target + ".error.txt", "w", encoding="utf-8") as handle:
                handle.write(error + "\n")
        try:
            os.replace(source, target)
        except OSError:
            return  # a concurrent scheduler finished it first

    # -- running one job ----------------------------------------------------

    def _run_named_job(self, name: str) -> int:
        """Run one active envelope to a terminal state; returns 1 if so."""
        path = os.path.join(self.spool, "active", f"{name}.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
            envelope = parse_envelope(raw)
        except Exception as exc:
            # Exception, not just ConfigError: a hand-dropped malformed
            # envelope can raise anything out of parsing ("values": 5
            # makes tuple() raise TypeError), and active/ is rescanned
            # first on restart — an escape here would crash-loop the
            # scheduler on the same envelope forever instead of parking
            # it in failed/.  Submitters get early validation in
            # submit_job; this path is the server's last line.
            self._finish(name, "failed", f"unusable job envelope: {exc}")
            return 1
        try:
            self._execute(envelope)
        except (ConfigError, OSError) as exc:
            self._finish(name, "failed", f"job could not run: {exc}")
            return 1
        self._finish(name, "done", None)
        return 1

    def _execute(self, envelope: JobEnvelope) -> Dict[str, Any]:
        """Run (or resume) one job's campaign; returns its summary."""
        job_dir = self.job_dir(envelope.job_id)
        os.makedirs(job_dir, exist_ok=True)
        self._write_job_json(job_dir, envelope)
        specs = build_specs(envelope)
        journal = open_journal(
            os.path.join(job_dir, "journal.jsonl"),
            envelope.fingerprint,
            resume=True,  # fresh file and crash recovery are the same path
        )
        results_path = os.path.join(job_dir, "results.jsonl")
        # Rebuild into a *new* inode renamed over the old one (the runner
        # re-emits journal-resumed outcomes before any fresh ones, so the
        # rebuilt stream is duplicate-free).  Truncating in place would
        # leave a concurrent ``repro attach`` holding a byte offset into
        # rebuilt content — misaligned mid-record, silently skipping
        # re-emitted trials.  With the rename, the tail sees the file
        # shrink, resets to the start, and dedupes by record key.
        rebuild = results_path + ".rebuild"
        stream = open(rebuild, "w", encoding="utf-8")
        os.replace(rebuild, results_path)

        def emit(outcome: TrialOutcome) -> None:
            stream.write(
                json.dumps(outcome_record(outcome), sort_keys=True) + "\n"
            )
            stream.flush()

        runner = TrialRunner(
            max_workers=envelope.max_workers,
            trial_timeout_s=envelope.trial_timeout_s,
            max_attempts=envelope.max_attempts,
            telemetry=self.telemetry,
            backend="dir-queue",
            lease_ttl_s=envelope.scenario.lease_ttl_s,
            queue_dir=os.path.join(job_dir, "queue"),
            quarantine_after=envelope.scenario.quarantine_after,
            retry_seed=envelope.scenario.seed,
            on_outcome=emit,
        )
        try:
            outcomes = runner.run(specs, journal=journal)
        finally:
            stream.close()
            journal.close()
        summary = {
            "job_id": envelope.job_id,
            "trials": len(specs),
            "ok": sum(1 for outcome in outcomes if outcome.ok),
            "failed": sum(1 for outcome in outcomes if not outcome.ok),
            "quarantined": sum(
                1
                for outcome in outcomes
                if outcome.error is not None
                and outcome.error.startswith("quarantined:")
            ),
        }
        marker = os.path.join(job_dir, _DONE_MARKER)
        tmp = marker + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, marker)
        return summary

    def _write_job_json(self, job_dir: str, envelope: JobEnvelope) -> None:
        """Record the resolved envelope beside its journal (idempotent).

        A resumed job must run the *original* definition; rewriting the
        file on every resume would let an edited active/ envelope silently
        redefine a half-finished campaign, so an existing record with a
        different fingerprint is a hard error instead.
        """
        path = os.path.join(job_dir, "job.json")
        record = {
            "scenario": envelope.scenario.to_dict(),
            "field": envelope.field,
            "values": list(envelope.values),
            "trials": envelope.trials,
            "max_workers": envelope.max_workers,
            "trial_timeout_s": envelope.trial_timeout_s,
            "max_attempts": envelope.max_attempts,
            "fingerprint": envelope.fingerprint,
        }
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    existing = json.load(handle)
            except (OSError, ValueError):
                existing = None  # torn write — rewrite it below
            if existing is not None:
                if existing.get("fingerprint") != envelope.fingerprint:
                    raise ConfigError(
                        f"job directory {job_dir} already holds a campaign "
                        "with a different fingerprint; refusing to mix"
                    )
                return
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)


def serve_spool(
    spool: str,
    once: bool = False,
    telemetry: Optional[CampaignTelemetry] = None,
    poll_interval_s: float = 0.2,
    stop: Optional[threading.Event] = None,
) -> int:
    """Run a :class:`CampaignServer` over ``spool``; the CLI entry point.

    ``once=True`` makes a single scheduling pass (recover + drain what is
    queued right now) and returns — the form tests and cron-style callers
    use.  Otherwise the scheduler polls until ``stop`` is set or the
    process is terminated.  Returns the number of jobs run to a terminal
    state.
    """
    server = CampaignServer(
        spool, telemetry=telemetry, poll_interval_s=poll_interval_s
    )
    if once:
        return server.run_once()
    return server.serve_forever(stop)


# -- attaching ----------------------------------------------------------------


def _stat_size(path: str) -> int:
    return os.stat(path).st_size


def tail_results(
    job_dir: str,
    follow: bool = True,
    poll_interval_s: float = 0.2,
    timeout_s: Optional[float] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield ``results.jsonl`` records as the scheduler appends them.

    The reader's torn-line discipline mirrors the journal's: only
    newline-terminated lines are consumed, so a record mid-append is
    simply not there yet.  A resumed scheduler renames a rebuilt stream
    over the old one; the tail detects the file shrinking below its
    offset, restarts from the beginning, and dedupes by record key — so
    every trial is still yielded exactly once across any number of
    scheduler crashes.  With ``follow`` the tail keeps polling until the
    job's ``done`` marker exists *and* every complete line has been
    yielded; without it, the currently-available records are yielded and
    the generator ends.  ``timeout_s`` bounds a follow (``None`` = wait
    forever); hitting it raises :class:`ConfigError` so a wedged attach
    fails loudly rather than hanging a terminal.

    This only ever *reads* — attach is safe from any host, any number of
    times, concurrently with the scheduler and every worker.
    """
    path = os.path.join(job_dir, "results.jsonl")
    offset = 0
    seen_keys: set = set()
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    while True:
        # Order matters: check the marker *before* reading, so the final
        # read after "done" cannot miss lines appended in between.
        finished = os.path.exists(os.path.join(job_dir, _DONE_MARKER))
        try:
            if _stat_size(path) < offset:
                offset = 0  # rebuilt by a resumed scheduler: re-read
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except OSError:
            chunk = ""  # job not materialised yet
        complete, _, _partial = chunk.rpartition("\n")
        if complete:
            offset += len(complete.encode("utf-8")) + 1
            for line in complete.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # a corrupt line; later records still count
                if not isinstance(record, dict):
                    continue
                key = json.dumps(record.get("key"), sort_keys=True)
                if key in seen_keys:
                    continue  # re-emitted after a rebuild
                seen_keys.add(key)
                yield record
        if finished or not follow:
            return
        if deadline is not None and time.monotonic() >= deadline:
            raise ConfigError(
                f"tail_results timed out after {timeout_s}s waiting on "
                f"{job_dir}"
            )
        time.sleep(poll_interval_s)


# -- async streaming ----------------------------------------------------------


async def astream_trials(
    runner: TrialRunner,
    specs: Sequence[TrialSpec],
    journal: Optional[TrialJournal] = None,
) -> AsyncIterator[TrialOutcome]:
    """Async counterpart of :meth:`TrialRunner.stream`.

    The campaign runs on a worker thread; outcomes cross into the event
    loop through ``call_soon_threadsafe``, so an asyncio application
    (a dashboard, a websocket fan-out) can consume trial results as they
    land without blocking its loop on campaign I/O.  Each trial key is
    yielded exactly once; an exception from the run is re-raised here
    after the in-flight outcomes drain.
    """
    loop = asyncio.get_running_loop()
    feed: "asyncio.Queue" = asyncio.Queue()
    done = object()
    state: Dict[str, Any] = {}

    def work() -> None:
        try:
            for outcome in runner.stream(specs, journal):
                loop.call_soon_threadsafe(feed.put_nowait, outcome)
        except BaseException as exc:  # re-raised on the loop side
            state["error"] = exc
        finally:
            loop.call_soon_threadsafe(feed.put_nowait, done)

    thread = threading.Thread(target=work, daemon=True)
    thread.start()
    while True:
        item = await feed.get()
        if item is done:
            break
        yield item
    # The sentinel is the thread's last act, so this join cannot block
    # the event loop for longer than the thread's final bookkeeping.
    thread.join()
    if "error" in state:
        raise state["error"]
