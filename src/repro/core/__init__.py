"""High-level CAVENET API: scenarios, the simulation facade, experiments.

This package glues the Behavioural Analyzer to the Communication Protocol
Simulator exactly the way paper Fig. 2 draws it: a :class:`Scenario`
describes the road, traffic and protocol; :class:`CavenetSimulation` runs
the CA mobility, turns it into a trace, replays the trace under the network
stack and returns a :class:`SimulationResult`; :mod:`repro.core.experiment`
sweeps protocols and parameters for the evaluation figures.
"""

from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation, SimulationResult
from repro.core.experiment import (
    ProtocolComparison,
    compare_protocols,
    goodput_surface,
)
from repro.core.runner import (
    TrialOutcome,
    TrialRunner,
    TrialSpec,
    run_trials,
)
from repro.core.sweep import (
    SweepPoint,
    SweepResult,
    run_sweep,
    sweep_scenario,
)

__all__ = [
    "Scenario",
    "CavenetSimulation",
    "SimulationResult",
    "ProtocolComparison",
    "compare_protocols",
    "goodput_surface",
    "TrialOutcome",
    "TrialRunner",
    "TrialSpec",
    "run_trials",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "sweep_scenario",
]
