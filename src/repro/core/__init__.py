"""High-level CAVENET API: scenarios, the simulation facade, experiments.

This package glues the Behavioural Analyzer to the Communication Protocol
Simulator exactly the way paper Fig. 2 draws it: a :class:`Scenario`
describes the road, traffic and protocol; :class:`CavenetSimulation` runs
the CA mobility, turns it into a trace, replays the trace under the network
stack and returns a :class:`SimulationResult`; :mod:`repro.core.experiment`
sweeps protocols and parameters for the evaluation figures;
:mod:`repro.core.registry` is the component seam every name (propagation,
routing, mobility, traffic, boundary) resolves through.

Exports are lazy (PEP 562, like :mod:`repro` itself) so that leaf modules
— :mod:`repro.phy.propagation`, :mod:`repro.routing`,
:mod:`repro.traffic`, :mod:`repro.mobility.builders` — can import
:mod:`repro.core.registry` to register their built-in components without
dragging the whole facade (and a circular import) in behind it.
"""

_LAZY_EXPORTS = {
    "Scenario": ("repro.core.config", "Scenario"),
    "CavenetSimulation": ("repro.core.simulation", "CavenetSimulation"),
    "SimulationResult": ("repro.core.simulation", "SimulationResult"),
    "ProtocolComparison": ("repro.core.experiment", "ProtocolComparison"),
    "compare_protocols": ("repro.core.experiment", "compare_protocols"),
    "goodput_surface": ("repro.core.experiment", "goodput_surface"),
    "TrialOutcome": ("repro.core.runner", "TrialOutcome"),
    "TrialRunner": ("repro.core.runner", "TrialRunner"),
    "TrialSpec": ("repro.core.runner", "TrialSpec"),
    "run_trials": ("repro.core.runner", "run_trials"),
    "SweepPoint": ("repro.core.sweep", "SweepPoint"),
    "SweepResult": ("repro.core.sweep", "SweepResult"),
    "run_sweep": ("repro.core.sweep", "run_sweep"),
    "sweep_scenario": ("repro.core.sweep", "sweep_scenario"),
    "registry": ("repro.core", "registry"),
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name):
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attribute = _LAZY_EXPORTS[name]
        if module_name == "repro.core":  # submodule export (registry)
            return importlib.import_module(f"repro.core.{attribute}")
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return __all__
