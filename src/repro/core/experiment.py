"""Evaluation experiments: protocol comparison and goodput surfaces.

These helpers regenerate the data behind the paper's Figs. 8-11: run the
same scenario (same mobility pattern, same traffic) under each routing
protocol and tabulate goodput and PDR per sender.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.config import Scenario
from repro.core.journal import campaign_fingerprint, open_journal
from repro.core.runner import TrialRunner, TrialSpec
from repro.core.simulation import CavenetSimulation, SimulationResult
from repro.metrics.collector import CampaignTelemetry
from repro.mobility.trace import MobilityTrace
from repro.util.errors import TrialError


@dataclasses.dataclass
class ProtocolComparison:
    """Per-protocol results over the same mobility trace."""

    scenario: Scenario
    results: Dict[str, SimulationResult]

    def pdr_table(self) -> Dict[str, Dict[int, float]]:
        """PDR per sender for each protocol — the rows of Fig. 11."""
        return {
            name: result.pdr_per_sender()
            for name, result in self.results.items()
        }

    def mean_pdr(self) -> Dict[str, float]:
        """Overall PDR per protocol."""
        return {name: r.pdr() for name, r in self.results.items()}

    def mean_delay(self) -> Dict[str, float]:
        """Mean end-to-end delay per protocol (route-search cost shows up
        here: the paper's conclusion ranks DYMO ahead of AODV on delay)."""
        return {
            name: r.delay_stats().mean_s for name, r in self.results.items()
        }

    def overhead_table(self) -> Dict[str, int]:
        """Control transmissions per protocol."""
        return {
            name: r.control_overhead().packets
            for name, r in self.results.items()
        }

    def format_pdr_table(self) -> str:
        """Human-readable Fig. 11 table."""
        senders = sorted(self.scenario.senders)
        names = list(self.results)
        width = max(len(n) for n in names) + 2
        lines = [
            "Sender ".ljust(10) + "".join(n.ljust(width) for n in names)
        ]
        table = self.pdr_table()
        for sender in senders:
            row = f"{sender:<10d}" + "".join(
                f"{table[name].get(sender, 0.0):<{width}.3f}" for name in names
            )
            lines.append(row)
        return "\n".join(lines)


def _run_protocol_trial(
    scenario: Scenario, trace: MobilityTrace
) -> SimulationResult:
    """Trial function for the runner: one protocol over the shared trace."""
    return CavenetSimulation(scenario).run(trace=trace)


def _trace_digest(trace: MobilityTrace) -> str:
    """A short stable digest of the mobility actually replayed.

    Ties a comparison's journal to its trace: resuming the "same" scenario
    over different mobility would silently mix apples and oranges without
    this.
    """
    import hashlib

    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(trace.times).tobytes())
    digest.update(np.ascontiguousarray(trace.positions).tobytes())
    return digest.hexdigest()[:16]


def compare_protocols(
    scenario: Scenario,
    protocols: Iterable[str] = ("AODV", "OLSR", "DYMO"),
    trace: Optional[MobilityTrace] = None,
    max_workers: int = 1,
    trial_timeout_s: Optional[float] = None,
    max_attempts: int = 2,
    telemetry: Optional[CampaignTelemetry] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
) -> ProtocolComparison:
    """Run ``scenario`` once per protocol over the *same* mobility trace.

    "The mobility pattern for all scenarios is the same" (paper Section
    IV-C): the trace is generated once and shared.  With ``max_workers > 1``
    the per-protocol runs execute in parallel worker processes; each run is
    seeded from the scenario alone, so results match serial execution
    exactly.  A comparison needs every protocol, so a run that still fails
    after retries raises :class:`~repro.util.errors.TrialError`.

    With ``journal_path``/``resume`` each finished protocol run is durably
    journalled and skipped on restart.  The fingerprint covers the scenario,
    the protocol list and a digest of the trace actually replayed, so a
    journal recorded over different mobility is rejected.
    """
    base_scenario = scenario
    for protocol in protocols:
        # Reject an unknown protocol before a trace is generated or any
        # worker spawned, not minutes into the campaign.
        scenario.with_protocol(protocol).validate()
    protocols = tuple(protocols)
    if trace is None:
        trace = CavenetSimulation(scenario).generate_trace()
    specs = [
        TrialSpec(
            key=protocol,
            fn=_run_protocol_trial,
            args=(scenario.with_protocol(protocol), trace),
        )
        for protocol in protocols
    ]
    # Canonical serialization — hash-compatible with the older
    # dataclasses.asdict fingerprints (see Scenario.to_dict).
    fingerprint = campaign_fingerprint(
        kind="compare",
        scenario=base_scenario.to_dict(),
        protocols=list(protocols),
        trace_digest=_trace_digest(trace),
    )
    journal = open_journal(journal_path, fingerprint, resume)
    runner = TrialRunner(
        max_workers=max_workers,
        trial_timeout_s=trial_timeout_s,
        max_attempts=max_attempts,
        telemetry=telemetry,
        backend=base_scenario.backend,
        lease_ttl_s=base_scenario.lease_ttl_s,
        retry_seed=base_scenario.seed,
    )
    try:
        outcomes = runner.run(specs, journal=journal)
    finally:
        if journal is not None:
            journal.close()
    failed = [o for o in outcomes if not o.ok]
    if failed:
        raise TrialError(
            f"protocol run {failed[0].key!r} failed after "
            f"{failed[0].attempts} attempts:\n{failed[0].error}",
            key=failed[0].key,
            attempts=failed[0].attempts,
        )
    results: Dict[str, SimulationResult] = {
        outcome.key: outcome.value for outcome in outcomes
    }
    return ProtocolComparison(scenario=scenario, results=results)


def goodput_surface(
    result: SimulationResult, bin_s: float = 1.0
) -> Tuple[np.ndarray, List[int], np.ndarray]:
    """The (flow x time) goodput surface of Figs. 8-10.

    Returns ``(bin_centers_s, flow_ids, surface)`` where ``surface[i, j]``
    is flow ``flow_ids[i]``'s goodput (bps) in time bin ``j``.  With the
    default many-to-one traffic pattern, flow ids are the sender ids.
    """
    flow_ids = sorted(
        flow_id for flow_id, _src, _dst in result.scenario.traffic_flows()
    )
    rows = []
    centers = None
    for flow_id in flow_ids:
        centers, series = result.goodput_series(flow_id, bin_s)
        rows.append(series)
    return centers, flow_ids, np.vstack(rows)
