"""Scenario description: the paper's Table I as a declarative dataclass.

The defaults ARE Table I: 30 nodes on a 3000 m circuit, AODV/OLSR/DYMO
selectable, 100 s simulation, CBR 5 packets/s x 512 bytes from nodes 1-8 to
node 0 between 10 s and 90 s, IEEE 802.11 DCF at 2 Mbps without RTS/CTS,
250 m transmission range under two-ray-ground propagation, 1 s hello
intervals and a 2 s OLSR TC interval.

A scenario is *fully declarative*: every component choice (``boundary``,
``initial_placement``, ``propagation``, ``protocol``, ``traffic``) is a
name resolved through :mod:`repro.core.registry`, legal values are derived
from the live registries rather than hand-kept tuples, and the whole thing
round-trips through :meth:`Scenario.to_dict`/:meth:`Scenario.from_dict`
and JSON files (:meth:`Scenario.save`/:meth:`Scenario.load`) exactly —
``Scenario.from_dict(s.to_dict()) == s``.  The canonical ``to_dict`` is
also what campaign fingerprints hash, so a scenario file, a sweep journal
and an in-memory scenario all share one serialization.
"""

from __future__ import annotations

import copy
import dataclasses
import json
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core import registry
from repro.mac.params import Mac80211Params
from repro.util.errors import ConfigError
from repro.util.units import CELL_LENGTH_M

#: Scenario-file format marker and schema version (see :meth:`Scenario.save`).
SCENARIO_FORMAT = "cavenet-scenario"
SCENARIO_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class Scenario:
    """Everything needed to reproduce one simulation run.

    Attributes:
        num_nodes: vehicles on the road (= network nodes).
        road_length_m: lane length; the Table I circuit is 3000 m.
        boundary: lane topology, a registered ``boundary`` component:
            ``"circuit"`` (improved CAVENET, closed circle) or ``"line"``
            (original CAVENET, straight lane with wrap shift).
        dawdle_p: NaS dawdling probability for the mobility model.  Table I
            does not state it; the default 0.5 (the stochastic setting of
            paper Fig. 4) produces the intermittent connectivity the
            goodput/PDR figures display.
        initial_placement: a registered ``mobility`` component.
            ``"random"`` scatters vehicles uniformly at random over the
            lane (heterogeneous gaps, some beyond radio range — the regime
            of the paper's evaluation); ``"uniform"`` spaces them evenly
            (a fully connected, static ring).
        v_max: NaS maximum velocity, cells/step.
        mobility_warmup_steps: CA steps run before the network simulation
            starts, discarding the mobility transient (Section IV-B).
        sim_time_s: network-simulation duration.
        protocol: routing protocol name ("AODV", "OLSR", "DYMO", ...; any
            registered ``routing`` component).  Normalized to upper case on
            construction so ``"aodv"`` and ``"AODV"`` are the same
            scenario — same journal fingerprint, same compare label.
        protocol_options: extra keyword arguments for the protocol
            constructor (e.g. an OlsrConfig with the ETX metric).
        receiver: destination node of every flow (Table I: node 0).
        senders: source nodes (Table I: nodes 1-8).
        flows: optional explicit traffic matrix as ``(src, dst)`` pairs;
            when given it overrides ``senders``/``receiver`` (which are
            ignored for traffic, though ``receiver`` still hosts the
            result's convenience sink).  Flow ids are assigned by
            position: flow ``i`` is ``flows[i]`` with id ``i + 1``.
        traffic: traffic generator name, a registered ``traffic``
            component (``"cbr"`` — Table I's default — or ``"poisson"``).
        traffic_options: extra keyword arguments for the traffic factory
            (e.g. ``{"on_mean_s": 2.0}`` for the Poisson on/off source).
        cbr_rate_pps / cbr_size_bytes: traffic shape (5 pps x 512 B);
            every built-in traffic model reads these as its rate/size.
        traffic_start_s / traffic_stop_s: emission window (10 s - 90 s).
        mac_params: 802.11 DCF configuration.
        tech: radio technology profile, a registered ``tech`` component:
            ``"80211-dsss"`` (Table I's 2 Mbps DSSS radio, built from
            ``mac_params`` — the default, bit-identical to scenarios
            predating this field) or ``"80211p"`` (5.9 GHz DSRC with a
            3-27 Mbps SNR-adaptive MCS ladder).  See
            :mod:`repro.phy.tech`.
        tech_options: extra keyword arguments for the tech factory
            (e.g. ``{"noise_figure_db": 8.0}`` or a replacement
            ``mcs`` table).
        propagation: a registered ``propagation`` component: ``"two_ray"``,
            ``"free_space"``, ``"shadowing"`` or ``"nakagami"``
            (Nakagami-m fading over a two-ray mean).
        shadowing_sigma_db / shadowing_exponent: shadowing-model knobs.
        nakagami_m: fading shape for the ``"nakagami"`` model (1 =
            Rayleigh; larger is milder).
        tx_range_m / cs_range_m: PHY thresholds derived from these ranges.
        position_cache_dt_s: position-lookup cache granularity.
        spatial: neighbor-culling strategy, a registered ``spatial``
            component: ``"dense"`` (exact O(N^2) link cache, the
            default) or ``"grid"`` (uniform-grid cell hash; per-slot
            rebuilds and receive fan-outs only visit nodes within the
            cull radius — the city-scale path).  With deterministic
            propagation and the default cull radius, grid results are
            bit-identical to dense; stochastic models consume the RNG
            per visited link, so grid runs differ from dense there
            (each is still seeded and reproducible on its own).
        cull_radius_m: grid cull radius (= cell size) in metres;
            ``None`` derives it from ``cs_range_m``, the maximum link
            range.  Must be >= ``cs_range_m`` — culling inside carrier
            sense would silently drop detectable links, so that is a
            :class:`ConfigError`.
        kernels: kernel backend, a registered ``kernels`` component:
            ``"auto"`` (the default — best backend available on this
            machine), ``"python"`` (explicit-loop reference),
            ``"vector"`` (numpy), ``"numba"`` or ``"cjit"`` (compiled;
            these warn once and fall back when their toolchain is
            absent).  Every backend computes bit-identical results —
            the choice affects wall clock only, never the trajectory.
        backend: campaign execution backend, a registered ``backend``
            component: ``"auto"`` (the default — serial for one worker,
            the process pool otherwise), ``"local-serial"``,
            ``"local-process"``, ``"local-supervised"`` (the
            lease/heartbeat-supervised pool) or ``"dir-queue"`` (the
            shared-directory job queue — multiple hosts mounting one
            directory drain the same campaign; see
            :mod:`repro.core.distq`).  Every backend produces
            bit-identical campaign results; the choice affects failure
            handling only.
        lease_ttl_s: supervised and dir-queue backends — how long one
            worker owns one trial before the monitor must extend (slow)
            or reclaim (hung/dead) the lease.
        queue_dir: dir-queue backend only — the shared directory holding
            the job queue.  ``None`` (the default) uses an ephemeral
            per-run directory, which still exercises the full claim/
            fencing protocol but cannot be joined by other hosts.
        quarantine_after: dir-queue backend only — a trial that kills
            this many *distinct* workers is quarantined (parked with its
            traceback, never retried) instead of poisoning the campaign.
        faults: declarative fault-injection specs, a tuple of mappings.
            Each entry names a registered ``fault`` component under
            ``"kind"`` (``"node-crash"``, ``"radio-silence"``,
            ``"channel-degradation"``, ``"packet-blackhole"``, or any
            third-party registration); remaining keys are passed to the
            fault factory as keyword options.  Empty (the default) means a
            fault-free run, bit-identical to scenarios predating this
            field.
        effects: declarative channel-effect stack, a tuple of mappings.
            Each entry names a registered ``effect`` component under
            ``"kind"`` (``"db-offset"``, ``"random-loss"``,
            ``"obstacle"``, or any third-party registration); remaining
            keys are passed to the effect factory as keyword options.
            Effects apply to every link's receive power in list order
            (see :mod:`repro.phy.effects` for the ordering/determinism
            contract).  Empty (the default) means an untouched channel,
            bit-identical to scenarios predating this field.
        seed: root seed for every random stream in the run.
    """

    num_nodes: int = 30
    road_length_m: float = 3000.0
    boundary: str = "circuit"
    dawdle_p: float = 0.5
    initial_placement: str = "random"
    v_max: int = 5
    cell_length_m: float = CELL_LENGTH_M
    mobility_warmup_steps: int = 100
    sim_time_s: float = 100.0
    protocol: str = "AODV"
    protocol_options: Dict[str, Any] = dataclasses.field(default_factory=dict)
    receiver: int = 0
    senders: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
    flows: Optional[Tuple[Tuple[int, int], ...]] = None
    traffic: str = "cbr"
    traffic_options: Dict[str, Any] = dataclasses.field(default_factory=dict)
    cbr_rate_pps: float = 5.0
    cbr_size_bytes: int = 512
    traffic_start_s: float = 10.0
    traffic_stop_s: float = 90.0
    mac_params: Mac80211Params = dataclasses.field(
        default_factory=Mac80211Params
    )
    tech: str = "80211-dsss"
    tech_options: Dict[str, Any] = dataclasses.field(default_factory=dict)
    propagation: str = "two_ray"
    shadowing_sigma_db: float = 4.0
    shadowing_exponent: float = 2.7
    nakagami_m: float = 3.0
    tx_range_m: float = 250.0
    cs_range_m: float = 550.0
    position_cache_dt_s: float = 0.1
    spatial: str = "dense"
    cull_radius_m: Optional[float] = None
    kernels: str = "auto"
    backend: str = "auto"
    lease_ttl_s: float = 30.0
    queue_dir: Optional[str] = None
    quarantine_after: int = 3
    faults: Tuple[Dict[str, Any], ...] = ()
    effects: Tuple[Dict[str, Any], ...] = ()
    # Default seed chosen so the default mobility exhibits the intermittent
    # connectivity regime of the paper's evaluation (node 0 reaches the
    # senders ~75% of the time; the largest component dips to ~57%).
    seed: int = 4

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ConfigError(f"num_nodes must be >= 2, got {self.num_nodes}")
        # Component names validate against — and are canonicalized by —
        # the live registries, so an unknown name fails in exactly one
        # place (registry.normalize) with the current list of choices,
        # and case never leaks into fingerprints or labels.  The routing
        # namespace is only *normalized* here (upper case); existence is
        # checked lazily at validate()/dispatch time to keep Scenario
        # construction from importing the whole protocol stack.
        object.__setattr__(
            self, "boundary", registry.normalize("boundary", self.boundary)
        )
        object.__setattr__(
            self,
            "propagation",
            registry.normalize("propagation", self.propagation),
        )
        object.__setattr__(
            self,
            "initial_placement",
            registry.normalize("mobility", self.initial_placement),
        )
        object.__setattr__(
            self, "traffic", registry.normalize("traffic", self.traffic)
        )
        object.__setattr__(
            self, "spatial", registry.normalize("spatial", self.spatial)
        )
        object.__setattr__(
            self, "kernels", registry.normalize("kernels", self.kernels)
        )
        object.__setattr__(
            self, "backend", registry.normalize("backend", self.backend)
        )
        object.__setattr__(
            self, "tech", registry.normalize("tech", self.tech)
        )
        object.__setattr__(self, "protocol", str(self.protocol).upper())
        if self.lease_ttl_s <= 0:
            raise ConfigError(
                f"lease_ttl_s must be > 0, got {self.lease_ttl_s}"
            )
        if self.quarantine_after < 1:
            raise ConfigError(
                "quarantine_after must be >= 1, got "
                f"{self.quarantine_after}"
            )
        if self.cull_radius_m is not None:
            if self.cull_radius_m <= 0:
                raise ConfigError(
                    f"cull_radius_m must be > 0, got {self.cull_radius_m}"
                )
            if self.cull_radius_m < self.cs_range_m:
                raise ConfigError(
                    f"cull_radius_m={self.cull_radius_m:g} is smaller than "
                    f"the maximum link range (cs_range_m={self.cs_range_m:g})"
                    "; spatial culling inside carrier sense would silently "
                    "drop detectable links"
                )
        # Fault specs: canonicalize each entry's "kind" through the fault
        # registry and store an owned deep copy, so scenario equality and
        # fingerprints see one spelling and later caller-side mutation of
        # the spec dicts cannot leak in.  The empty default takes the
        # short branch and never imports repro.faults, keeping fault-free
        # scenarios on the exact pre-fault code path.
        if self.faults:
            normalized = []
            for entry in self.faults:
                if not isinstance(entry, Mapping) or "kind" not in entry:
                    raise ConfigError(
                        "each faults entry must be a mapping with a 'kind' "
                        f"key naming a registered fault model, got {entry!r}"
                    )
                spec = copy.deepcopy(dict(entry))
                spec["kind"] = registry.normalize("fault", spec["kind"])
                normalized.append(spec)
            object.__setattr__(self, "faults", tuple(normalized))
        else:
            object.__setattr__(self, "faults", ())
        # Channel-effect specs: same normalization contract as faults —
        # canonical "kind" spelling, owned deep copies, and the empty
        # default never imports repro.phy.effects.
        if self.effects:
            normalized_effects = []
            for entry in self.effects:
                if not isinstance(entry, Mapping) or "kind" not in entry:
                    raise ConfigError(
                        "each effects entry must be a mapping with a 'kind' "
                        f"key naming a registered channel effect, got "
                        f"{entry!r}"
                    )
                spec = copy.deepcopy(dict(entry))
                spec["kind"] = registry.normalize("effect", spec["kind"])
                normalized_effects.append(spec)
            object.__setattr__(self, "effects", tuple(normalized_effects))
        else:
            object.__setattr__(self, "effects", ())
        if not 0.0 <= self.dawdle_p <= 1.0:
            raise ConfigError(f"dawdle_p must be in [0,1], got {self.dawdle_p}")
        if self.sim_time_s <= 0:
            raise ConfigError(f"sim_time_s must be > 0, got {self.sim_time_s}")
        if self.flows is None:
            if self.receiver in self.senders:
                raise ConfigError(
                    f"receiver {self.receiver} cannot also be a sender"
                )
            endpoints = (self.receiver, *self.senders)
        else:
            if not self.flows:
                raise ConfigError("flows, when given, must be non-empty")
            for src, dst in self.flows:
                if src == dst:
                    raise ConfigError(f"flow {src}->{dst} loops on itself")
            endpoints = (
                self.receiver,
                *(node for flow in self.flows for node in flow),
            )
        for node in endpoints:
            if not 0 <= node < self.num_nodes:
                raise ConfigError(
                    f"node {node} outside [0, {self.num_nodes})"
                )
        if not self.traffic_start_s < self.traffic_stop_s <= self.sim_time_s:
            raise ConfigError(
                "need traffic_start_s < traffic_stop_s <= sim_time_s, got "
                f"{self.traffic_start_s}, {self.traffic_stop_s}, "
                f"{self.sim_time_s}"
            )
        num_cells = int(self.road_length_m // self.cell_length_m)
        if self.num_nodes > num_cells:
            raise ConfigError(
                f"{self.num_nodes} vehicles do not fit on {num_cells} cells"
            )

    def validate(self) -> "Scenario":
        """Full validation pass, run *before* any worker is spawned.

        ``__post_init__`` already checks everything knowable without the
        protocol stack; this re-runs those checks (guarding against
        ``object.__setattr__``-style mutation) and adds cross-module ones
        that would otherwise only surface inside a worker process minutes
        into a campaign — most importantly that ``protocol`` actually
        names a registered routing protocol.  Raises
        :class:`~repro.util.errors.ConfigError`; returns ``self`` so entry
        points can chain ``scenario.validate()``.
        """
        self.__post_init__()
        registry.normalize("routing", self.protocol)
        if self.mobility_warmup_steps < 0:
            raise ConfigError(
                "mobility_warmup_steps must be >= 0, got "
                f"{self.mobility_warmup_steps}"
            )
        if self.cbr_rate_pps <= 0:
            raise ConfigError(
                f"cbr_rate_pps must be > 0, got {self.cbr_rate_pps}"
            )
        if self.cbr_size_bytes <= 0:
            raise ConfigError(
                f"cbr_size_bytes must be > 0, got {self.cbr_size_bytes}"
            )
        if not 0 < self.tx_range_m <= self.cs_range_m:
            raise ConfigError(
                "need 0 < tx_range_m <= cs_range_m, got "
                f"{self.tx_range_m}, {self.cs_range_m}"
            )
        return self

    @property
    def num_cells(self) -> int:
        """Lane length in CA cells."""
        return int(self.road_length_m // self.cell_length_m)

    @property
    def density(self) -> float:
        """Vehicle density rho of the mobility model."""
        return self.num_nodes / self.num_cells

    def traffic_flows(self) -> Tuple[Tuple[int, int, int], ...]:
        """The normalised traffic matrix: ``(flow_id, src, dst)`` triples.

        With the default many-to-one pattern, flow ids are the sender ids
        (matching the paper's per-sender figures); with an explicit
        ``flows`` list they are positional (1-based).
        """
        if self.flows is None:
            return tuple(
                (sender, sender, self.receiver) for sender in self.senders
            )
        return tuple(
            (index + 1, src, dst)
            for index, (src, dst) in enumerate(self.flows)
        )

    def with_protocol(self, protocol: str, **options: Any) -> "Scenario":
        """A copy of this scenario running a different protocol."""
        return dataclasses.replace(
            self, protocol=protocol, protocol_options=dict(options)
        )

    # -- canonical serialization ---------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The canonical plain-dict form of this scenario.

        JSON-native containers throughout (tuples become lists,
        ``mac_params`` becomes its field dict), keys in field order.  This
        single serialization backs :meth:`save`/:meth:`load`, the CLI's
        ``--set`` overrides, and every campaign fingerprint — and it
        canonical-JSON-serializes identically to ``dataclasses.asdict``
        for scenarios whose option dicts hold plain data, so journals
        fingerprinted before this method existed still resume.
        """
        out: Dict[str, Any] = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name == "mac_params":
                value = dataclasses.asdict(value)
            elif field.name == "senders":
                value = [int(node) for node in value]
            elif field.name == "flows":
                value = (
                    None
                    if value is None
                    else [[int(src), int(dst)] for src, dst in value]
                )
            elif field.name in ("faults", "effects"):
                value = [copy.deepcopy(dict(entry)) for entry in value]
            elif isinstance(value, dict):
                value = copy.deepcopy(value)
            out[field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output (exact inverse).

        Unknown keys raise :class:`ConfigError` naming them — a typo in a
        scenario file fails loudly instead of silently running defaults.
        """
        known = {field.name for field in dataclasses.fields(cls)}
        kwargs = dict(data)
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise ConfigError(
                f"unknown Scenario field(s) {unknown}; known: {sorted(known)}"
            )
        if kwargs.get("senders") is not None:
            kwargs["senders"] = tuple(int(n) for n in kwargs["senders"])
        if kwargs.get("flows") is not None:
            kwargs["flows"] = tuple(
                (int(src), int(dst)) for src, dst in kwargs["flows"]
            )
        mac_params = kwargs.get("mac_params")
        if isinstance(mac_params, Mapping):
            try:
                kwargs["mac_params"] = Mac80211Params(**mac_params)
            except TypeError as exc:
                raise ConfigError(f"bad mac_params: {exc}") from exc
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigError(f"bad scenario data: {exc}") from exc

    def save(self, path: str) -> None:
        """Write this scenario as a JSON file (see :meth:`load`).

        The file is the canonical :meth:`to_dict` plus a format marker and
        schema version; ``protocol_options``/``traffic_options`` must hold
        JSON-serializable values to be saved (exotic objects still work
        in memory, just not as files).
        """
        payload = {
            "format": SCENARIO_FORMAT,
            "schema": SCENARIO_SCHEMA,
            **self.to_dict(),
        }
        try:
            text = json.dumps(payload, indent=2)
        except TypeError as exc:
            raise ConfigError(
                f"scenario is not JSON-serializable ({exc}); "
                "protocol_options/traffic_options must hold plain data "
                "to be saved to a file"
            ) from exc
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    @classmethod
    def load(cls, path: str) -> "Scenario":
        """Read a scenario saved by :meth:`save` (exact round-trip)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"scenario file {path!r} is not JSON: {exc}")
        if not isinstance(data, dict):
            raise ConfigError(
                f"scenario file {path!r} must hold a JSON object, "
                f"got {type(data).__name__}"
            )
        fmt = data.pop("format", SCENARIO_FORMAT)
        if fmt != SCENARIO_FORMAT:
            raise ConfigError(
                f"{path!r} is not a scenario file (format {fmt!r})"
            )
        schema = data.pop("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ConfigError(
                f"scenario file {path!r} has schema {schema!r}; this "
                f"reader speaks schema {SCENARIO_SCHEMA}"
            )
        return cls.from_dict(data)

    def with_overrides(self, overrides: Mapping[str, Any]) -> "Scenario":
        """A copy with dotted-key overrides applied (the CLI's ``--set``).

        Keys are field names, optionally dotted into nested mappings:
        ``seed``, ``mac_params.cw_min``, ``traffic_options.on_mean_s``.
        Top-level keys must exist; keys inside option dicts may be new
        (that is what the dicts are for).
        """
        data = self.to_dict()
        for dotted, value in overrides.items():
            parts = dotted.split(".")
            cursor: Any = data
            for depth, part in enumerate(parts[:-1]):
                if not isinstance(cursor, dict) or part not in cursor:
                    raise ConfigError(
                        f"cannot override {dotted!r}: "
                        f"{'.'.join(parts[:depth + 1])!r} is not a nested "
                        "mapping of Scenario"
                    )
                cursor = cursor[part]
            leaf = parts[-1]
            if not isinstance(cursor, dict):
                raise ConfigError(
                    f"cannot override {dotted!r}: parent is not a mapping"
                )
            if cursor is data and leaf not in cursor:
                raise ConfigError(
                    f"unknown Scenario field {leaf!r}; "
                    f"known: {sorted(data)}"
                )
            cursor[leaf] = value
        return type(self).from_dict(data)

    def table1(self) -> Dict[str, str]:
        """Render this scenario in the shape of the paper's Table I."""
        rts = (
            "None"
            if self.mac_params.rts_threshold_bytes is None
            else f">={self.mac_params.rts_threshold_bytes} B"
        )
        road = (
            f"{self.road_length_m:.0f} m Circuit"
            if self.boundary == "circuit"
            else f"{self.road_length_m:.0f} m Line"
        )
        propagation_labels = {
            "two_ray": "Two-ray Ground",
            "free_space": "Free Space",
            "shadowing": "Log-normal Shadowing",
            "nakagami": f"Nakagami-m (m={self.nakagami_m:g})",
        }
        return {
            "Network Simulator": "repro (ns-2 substitute)",
            "Routing Protocol": self.protocol,
            "Simulation Time": f"{self.sim_time_s:.0f} s",
            "Simulation Area": road,
            "Number of Nodes": str(self.num_nodes),
            "Traffic Source/Destination": "Deterministic",
            "DATA TYPE": self.traffic.upper(),
            "Packets Generation Rate": f"{self.cbr_rate_pps:.0f} packets/s",
            "Packet Size": f"{self.cbr_size_bytes} bytes",
            "MAC Protocol": "IEEE802.11 DCF",
            "PHY Profile": self.tech,
            "MAC Rate": f"{self.mac_params.data_rate_bps / 1e6:.0f} Mbps",
            "RTS/CTS": rts,
            "Transmission Range": f"{self.tx_range_m:.0f} m",
            "Radio Propagation Models": propagation_labels.get(
                self.propagation, self.propagation
            ),
        }
