"""Parameter sweeps over scenarios.

The evaluation questions a tool like CAVENET exists to answer are almost
always sweeps — PDR vs density, delay vs load, goodput vs range.  This
module runs a base scenario across one varying field (optionally with
several seeds per point) and aggregates the standard metrics.  The
``(value, trial)`` grid is embarrassingly parallel, so it fans out through
:mod:`repro.core.runner`; per-trial seeds are derived before submission,
which keeps parallel results bit-identical to serial ones.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.core.config import Scenario
from repro.core.journal import campaign_fingerprint, open_journal
from repro.core.runner import TrialRunner, TrialSpec
from repro.core.simulation import CavenetSimulation, SimulationResult
from repro.metrics.collector import CampaignTelemetry
from repro.util.errors import ConfigError, TrialError


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """Aggregated metrics at one parameter value.

    Attributes:
        value: the swept field's value.
        pdr_mean / pdr_std: delivery ratio over the surviving trials.
        delay_mean_s: mean end-to-end delay (NaN when nothing delivered).
        control_packets_mean: routing-control transmissions.
        results: the raw per-trial results, in trial order.
        num_failed: trials at this point that failed even after retries
            (their results are excluded from the aggregates above).
    """

    value: Any
    pdr_mean: float
    pdr_std: float
    delay_mean_s: float
    control_packets_mean: float
    results: List[SimulationResult]
    num_failed: int = 0


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """All points of one sweep."""

    field: str
    points: List[SweepPoint]

    def values(self) -> List[Any]:
        """The swept values, in order."""
        return [point.value for point in self.points]

    def pdr_curve(self) -> np.ndarray:
        """Mean PDR per point."""
        return np.array([point.pdr_mean for point in self.points])

    def delay_curve(self) -> np.ndarray:
        """Mean delay per point."""
        return np.array([point.delay_mean_s for point in self.points])

    @property
    def total_failed(self) -> int:
        """Trials dropped from the aggregates across every point."""
        return sum(point.num_failed for point in self.points)


def _run_scenario_trial(scenario: Scenario) -> SimulationResult:
    """Trial function for the runner: one full simulation of ``scenario``."""
    return CavenetSimulation(scenario).run()


def _aggregate_point(
    value: Any, results: List[SimulationResult], num_failed: int
) -> SweepPoint:
    """Fold one point's surviving trial results into a :class:`SweepPoint`."""
    pdrs = np.array([r.pdr() for r in results])
    delays = np.array([r.delay_stats().mean_s for r in results])
    if np.all(np.isnan(delays)):
        delay_mean = float("nan")  # nothing delivered at this point
    else:
        delay_mean = float(np.nanmean(delays))
    control = np.array(
        [r.control_overhead().packets for r in results], dtype=float
    )
    return SweepPoint(
        value=value,
        pdr_mean=float(pdrs.mean()),
        pdr_std=float(pdrs.std(ddof=1)) if len(results) > 1 else 0.0,
        delay_mean_s=delay_mean,
        control_packets_mean=float(control.mean()),
        results=results,
        num_failed=num_failed,
    )


def sweep_scenario(
    base: Scenario,
    field: str,
    values: Sequence[Any],
    trials: int = 1,
    max_workers: int = 1,
    trial_timeout_s: Optional[float] = None,
    max_attempts: int = 2,
    telemetry: Optional[CampaignTelemetry] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
) -> SweepResult:
    """Run ``base`` once per ``(value, trial)``, varying one field.

    Each trial uses a distinct seed derived from the base seed, so trials
    differ in mobility and protocol randomness but remain reproducible.
    ``field`` must be a :class:`Scenario` field name.

    With ``max_workers > 1`` the trials fan out across worker processes
    (element-wise identical results, since every seed is fixed up front);
    ``trial_timeout_s`` bounds each trial and failed trials are retried,
    then dropped from the point's aggregates (``SweepPoint.num_failed``
    counts them).  A point where *every* trial failed raises
    :class:`~repro.util.errors.TrialError`.

    With ``journal_path`` every completed trial is durably journalled;
    ``resume=True`` then skips trials already in the journal, so a sweep
    killed at any trial boundary finishes from where it died with results
    identical to an uninterrupted run.  The journal is fingerprinted with
    the scenario, grid and seeds — resuming with a *different* sweep
    definition is rejected, not merged.

    The scenario's ``backend``/``lease_ttl_s`` fields choose the
    execution backend (``"auto"``, ``"local-serial"``, ``"local-process"``,
    ``"local-supervised"`` or ``"dir-queue"``) and its lease duration;
    ``queue_dir``/``quarantine_after`` configure the shared-directory
    queue — see :mod:`repro.core.backend` and :mod:`repro.core.distq`.
    """
    if trials < 1:
        raise ConfigError(f"trials must be >= 1, got {trials}")
    if field not in {f.name for f in dataclasses.fields(Scenario)}:
        raise ConfigError(f"{field!r} is not a Scenario field")
    base.validate()  # fail on a bad config before any worker is spawned
    specs = []
    for value_index, value in enumerate(values):
        for trial in range(trials):
            scenario = dataclasses.replace(
                base, **{field: value, "seed": base.seed + 1000 * trial}
            )
            specs.append(
                TrialSpec(
                    key=(value, trial),
                    fn=_run_scenario_trial,
                    args=(scenario,),
                )
            )
    # Fingerprint over the canonical serialization (Scenario.to_dict),
    # which canonical-JSON-hashes identically to the dataclasses.asdict
    # form older journals were recorded with, so those still resume.
    fingerprint = campaign_fingerprint(
        kind="sweep",
        scenario=base.to_dict(),
        field=field,
        values=list(values),
        trials=trials,
    )
    journal = open_journal(journal_path, fingerprint, resume)
    runner = TrialRunner(
        max_workers=max_workers,
        trial_timeout_s=trial_timeout_s,
        max_attempts=max_attempts,
        telemetry=telemetry,
        backend=base.backend,
        lease_ttl_s=base.lease_ttl_s,
        queue_dir=base.queue_dir,
        quarantine_after=base.quarantine_after,
        retry_seed=base.seed,
    )
    try:
        outcomes = runner.run(specs, journal=journal)
    finally:
        if journal is not None:
            journal.close()
    points: List[SweepPoint] = []
    for value_index, value in enumerate(values):
        per_point = outcomes[value_index * trials:(value_index + 1) * trials]
        results = [o.value for o in per_point if o.ok]
        failed = [o for o in per_point if not o.ok]
        if not results:
            raise TrialError(
                f"all {trials} trials failed at {field}={value!r}; "
                f"first error:\n{failed[0].error}",
                key=failed[0].key,
                attempts=failed[0].attempts,
            )
        points.append(_aggregate_point(value, results, len(failed)))
    return SweepResult(field=field, points=points)


#: Campaign-style alias for :func:`sweep_scenario`.
run_sweep = sweep_scenario
