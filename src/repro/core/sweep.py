"""Parameter sweeps over scenarios.

The evaluation questions a tool like CAVENET exists to answer are almost
always sweeps — PDR vs density, delay vs load, goodput vs range.  This
module runs a base scenario across one varying field (optionally with
several seeds per point) and aggregates the standard metrics.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation, SimulationResult


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """Aggregated metrics at one parameter value.

    Attributes:
        value: the swept field's value.
        pdr_mean / pdr_std: delivery ratio over the trials.
        delay_mean_s: mean end-to-end delay (NaN when nothing delivered).
        control_packets_mean: routing-control transmissions.
        results: the raw per-trial results.
    """

    value: Any
    pdr_mean: float
    pdr_std: float
    delay_mean_s: float
    control_packets_mean: float
    results: List[SimulationResult]


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """All points of one sweep."""

    field: str
    points: List[SweepPoint]

    def values(self) -> List[Any]:
        """The swept values, in order."""
        return [point.value for point in self.points]

    def pdr_curve(self) -> np.ndarray:
        """Mean PDR per point."""
        return np.array([point.pdr_mean for point in self.points])

    def delay_curve(self) -> np.ndarray:
        """Mean delay per point."""
        return np.array([point.delay_mean_s for point in self.points])


def sweep_scenario(
    base: Scenario,
    field: str,
    values: Sequence[Any],
    trials: int = 1,
) -> SweepResult:
    """Run ``base`` once per ``(value, trial)``, varying one field.

    Each trial uses a distinct seed derived from the base seed, so trials
    differ in mobility and protocol randomness but remain reproducible.
    ``field`` must be a :class:`Scenario` field name.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if field not in {f.name for f in dataclasses.fields(Scenario)}:
        raise ValueError(f"{field!r} is not a Scenario field")
    points: List[SweepPoint] = []
    for value in values:
        results = []
        for trial in range(trials):
            scenario = dataclasses.replace(
                base, **{field: value, "seed": base.seed + 1000 * trial}
            )
            results.append(CavenetSimulation(scenario).run())
        pdrs = np.array([r.pdr() for r in results])
        delays = np.array([r.delay_stats().mean_s for r in results])
        if np.all(np.isnan(delays)):
            delay_mean = float("nan")  # nothing delivered at this point
        else:
            delay_mean = float(np.nanmean(delays))
        control = np.array(
            [r.control_overhead().packets for r in results], dtype=float
        )
        points.append(
            SweepPoint(
                value=value,
                pdr_mean=float(pdrs.mean()),
                pdr_std=float(pdrs.std(ddof=1)) if trials > 1 else 0.0,
                delay_mean_s=delay_mean,
                control_packets_mean=float(control.mean()),
                results=results,
            )
        )
    return SweepResult(field=field, points=points)
