"""Execution backends: *where* and *how defensively* campaign trials run.

:class:`~repro.core.runner.TrialRunner` owns the campaign-level concerns
every execution strategy shares — journal resume, telemetry, retry
accounting — and delegates the actual running of trials to an
:class:`ExecutionBackend` resolved by name through the ninth registry
namespace, ``backend``:

``local-serial``
    In-process, one trial at a time.  No pickling requirements, no
    timeout enforcement, no sabotage surface — the ground truth every
    other backend must be bit-identical to.
``local-process``
    The one-process-per-trial pool: bounded parallelism, per-attempt
    timeouts, crash/corruption retry.  Degrades per-trial to serial when
    a worker cannot be launched, and wholesale when ``multiprocessing``
    is unavailable.
``local-supervised``
    The pool plus *supervision*: lease-based trial ownership layered on
    the journal (append-only lease records; expired leases are reclaimed
    without double-counting because results only ever come from
    ``trial`` records), worker heartbeats with a monitor that
    distinguishes **hung** (missed heartbeats → SIGKILL and reclaim)
    from **slow** (healthy heartbeats past the lease deadline → bounded
    extensions) from **dead** (exit code → immediate reclaim),
    deterministic per-trial retry backoff jittered from a named RNG
    stream, and a circuit breaker that counts *consecutive
    infrastructure failures* and degrades the campaign down the ladder
    ``supervised → process pool → serial`` rather than failing it.
``auto``
    ``local-serial`` for ``max_workers == 1``, else ``local-process`` —
    the historical behaviour of the runner before backends existed.

Every backend receives the *dense* spec list (journal-resume holes
already removed by the runner) and must return bit-identical values for
identical specs: supervision changes failure handling, never results.

Determinism of the retry *schedule* is part of the contract: the backoff
before attempt ``k`` of a trial is a pure function of ``(retry_seed,
trial key, k)`` — see :func:`retry_backoff_schedule` — so a campaign
retried on one worker sleeps exactly as long as the same campaign
retried on eight.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.journal import LeaseRecord, TrialJournal, trial_key_id
from repro.core.registry import register
from repro.core.runner import TrialOutcome, TrialRunner, TrialSpec
from repro.util.rng import RngStreams

#: The degradation ladder, most to least capable.  The circuit breaker
#: (and the dir-queue backend's directory health probe) moves a campaign
#: down one rung at a time; the bottom rung cannot fail from
#: infrastructure because it launches no workers.
DEGRADATION_LADDER: Tuple[str, ...] = (
    "dir-queue",
    "local-supervised",
    "local-process",
    "local-serial",
)


def retry_backoff_schedule(
    retry_seed: int,
    key: Any,
    max_attempts: int,
    base_s: float = 0.05,
    cap_s: float = 2.0,
) -> Tuple[float, ...]:
    """The delays (seconds) before attempts ``2..max_attempts`` of ``key``.

    Exponential backoff with seeded jitter: delay ``k`` (0-based) is
    ``min(cap_s, base_s * 2**k)`` scaled by a jitter factor in
    ``[0.5, 1.0)`` drawn from the trial's own named RNG stream
    (``"retry-backoff:<key id>"`` under ``retry_seed``).  A pure function
    of its arguments — independent of worker count, wall clock and
    execution order — which is what makes retry timing reproducible and
    testable.
    """
    steps = max(0, int(max_attempts) - 1)
    if steps == 0:
        return ()
    rng = RngStreams(retry_seed).stream("retry-backoff:" + trial_key_id(key))
    jitter = rng.random(steps)
    return tuple(
        min(cap_s, base_s * (2.0**k)) * (0.5 + 0.5 * float(jitter[k]))
        for k in range(steps)
    )


class ExecutionBackend:
    """Contract: run a dense spec list, return outcomes in dense indices.

    Backends borrow the runner's low-level mechanics (``_run_serial``,
    ``_context``, ``_launch``, ``_poll``, ``_record``) rather than
    reimplementing them, so tests that monkeypatch those methods govern
    every backend uniformly.
    """

    #: Registry name, set by the factory decorators below.
    name = "abstract"

    def __init__(self, runner: TrialRunner) -> None:
        self.runner = runner

    def run(
        self,
        specs: Sequence[TrialSpec],
        journal: Optional[TrialJournal] = None,
    ) -> List[TrialOutcome]:
        raise NotImplementedError


class LocalSerialBackend(ExecutionBackend):
    """Everything in-process, in order — the bit-identity ground truth."""

    name = "local-serial"

    def run(self, specs, journal=None):
        runner = self.runner
        return [
            runner._run_serial(index, spec, journal)
            for index, spec in enumerate(specs)
        ]


class LocalProcessBackend(ExecutionBackend):
    """One process per trial with bounded parallelism and plain retry.

    This is the pool loop the runner used to own: launch up to
    ``max_workers`` workers, poll them, retry failed attempts
    immediately (no backoff), degrade a trial to in-process execution
    when its worker cannot be launched, and degrade the whole run to
    serial when no multiprocessing context exists.
    """

    name = "local-process"

    def run(self, specs, journal=None):
        runner = self.runner
        context = runner._context()
        if context is None:
            return LocalSerialBackend(runner).run(specs, journal)
        specs = list(specs)
        results: List[Optional[TrialOutcome]] = [None] * len(specs)
        pending: List[Tuple[int, int]] = [(i, 1) for i in range(len(specs))]
        pending.reverse()  # pop() from the end == FIFO over trial indices
        active: List[Any] = []

        def settle(
            index, attempt, status, elapsed, value=None, error=None,
            infra=False,
        ):
            """Record the attempt; either finish the trial or queue a retry."""
            spec = specs[index]
            runner._record(spec.key, attempt, status, elapsed, error)
            if status == "ok":
                if journal is not None:
                    journal.record_success(spec.key, value, attempt, elapsed)
                results[index] = TrialOutcome(
                    key=spec.key,
                    index=index,
                    value=value,
                    attempts=attempt,
                    wall_clock_s=elapsed,
                )
                runner._emit(results[index])
            elif attempt < runner.max_attempts:
                pending.insert(0, (index, attempt + 1))
            else:
                if journal is not None:
                    journal.record_failure(spec.key, error or "", attempt)
                results[index] = TrialOutcome(
                    key=spec.key,
                    index=index,
                    error=error,
                    attempts=attempt,
                    wall_clock_s=elapsed,
                    timed_out=status == "timeout",
                    infrastructure=infra,
                )

        try:
            while pending or active:
                while pending and len(active) < runner.max_workers:
                    index, attempt = pending.pop()
                    try:
                        active.append(
                            runner._launch(
                                context, specs[index], index, attempt
                            )
                        )
                    except Exception:
                        # Cannot start a worker (resources, pickling, ...):
                        # degrade this trial to an in-process run.
                        results[index] = runner._run_serial(
                            index, specs[index], journal
                        )
                progressed = False
                still_active: List[Any] = []
                now = time.monotonic()
                for worker in active:
                    finished = runner._poll(worker, now, settle)
                    if finished:
                        progressed = True
                    else:
                        still_active.append(worker)
                active = still_active
                if active and not progressed:
                    time.sleep(runner.poll_interval_s)
        finally:
            for worker in active:  # interrupted: leave no stragglers behind
                worker.process.terminate()
                worker.process.join()
                worker.conn.close()
        return [outcome for outcome in results if outcome is not None]


# -- supervised backend -------------------------------------------------------


def _supervised_worker_main(
    fn, args, kwargs, conn, heartbeat_interval_s, heartbeats_enabled
) -> None:
    """Worker entry point with a heartbeat side-channel.

    A daemon thread sends ``("hb", seq)`` over the result pipe every
    ``heartbeat_interval_s`` while the trial runs; the terminal
    ``("ok"/"error", payload)`` message uses the same pipe, serialised by
    a lock so a heartbeat can never interleave into a half-sent result.
    ``heartbeats_enabled=False`` exists solely for chaos testing: a muted
    worker computes normally but looks *hung* to the monitor.
    """
    lock = threading.Lock()
    stop = threading.Event()

    def beat() -> None:
        seq = 0
        while not stop.wait(heartbeat_interval_s):
            seq += 1
            try:
                with lock:
                    conn.send(("hb", seq))
            except Exception:
                return  # parent gone; the trial's fate no longer matters

    if heartbeats_enabled:
        threading.Thread(target=beat, daemon=True).start()
    try:
        value = fn(*args, **kwargs)
        stop.set()
        try:
            with lock:
                conn.send(("ok", value))
        except Exception as exc:  # result not picklable / pipe gone
            with lock:
                conn.send(("error", f"result could not be returned: {exc!r}"))
    except BaseException as exc:
        stop.set()
        with lock:
            conn.send(
                ("error",
                 f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
            )
    finally:
        stop.set()
        conn.close()


@dataclasses.dataclass
class _Supervised:
    """Book-keeping for one in-flight supervised worker."""

    index: int
    attempt: int
    process: Any
    conn: Any
    started: float        # monotonic
    last_beat: float      # monotonic time of the most recent heartbeat
    lease_deadline: float  # monotonic mirror of the journalled deadline
    extensions: int = 0
    timeout_deadline: Optional[float] = None


class SupervisedBackend(ExecutionBackend):
    """The process pool under lease/heartbeat supervision.

    See the module docstring for the model.  All supervision state is
    parent-side and single-threaded; workers only differ from the plain
    pool's by the heartbeat thread.
    """

    name = "local-supervised"

    def __init__(self, runner: TrialRunner) -> None:
        super().__init__(runner)
        self.owner = f"runner-{os.getpid()}"
        ttl = runner.lease_ttl_s
        self.heartbeat_s = (
            runner.heartbeat_interval_s
            if runner.heartbeat_interval_s is not None
            else max(0.01, ttl / 5.0)
        )
        # A worker is *hung* once this long passes without a heartbeat.
        # Three missed beats plus slack tolerates scheduler jitter while
        # still catching a muted worker well before a long lease expires.
        self.miss_budget_s = 3.0 * self.heartbeat_s + 0.05

    # -- lease bookkeeping (journal-backed when a journal exists) -----------

    def _grant(self, journal, key, attempt, leases, ttl=None):
        ttl = self.runner.lease_ttl_s if ttl is None else ttl
        if journal is not None:
            lease = journal.record_lease(key, self.owner, attempt, ttl)
        else:
            lease = LeaseRecord(
                key_id=trial_key_id(key),
                owner=self.owner,
                attempt=attempt,
                deadline_unix=time.time() + ttl,
            )
            leases[lease.key_id] = lease
        return lease

    def _release(self, journal, key, leases) -> None:
        if journal is None:
            leases.pop(trial_key_id(key), None)
        # With a journal the trial record itself releases the lease.

    def run(self, specs, journal=None):  # noqa: C901 - one cohesive monitor
        runner = self.runner
        context = runner._context()
        if context is None:
            runner._record_event(
                "degraded", detail="local-supervised->local-serial "
                "(multiprocessing unavailable)",
            )
            if journal is not None:
                journal.record_campaign_event(
                    "degraded", "local-supervised->local-serial"
                )
            return LocalSerialBackend(runner).run(specs, journal)

        specs = list(specs)
        results: List[Optional[TrialOutcome]] = [None] * len(specs)
        # Pending entries: (index, attempt, not_before_monotonic).
        pending: List[Tuple[int, int, float]] = [
            (i, 1, 0.0) for i in range(len(specs))
        ]
        active: List[_Supervised] = []
        leases: Dict[str, LeaseRecord] = (
            journal.leases if journal is not None else {}
        )
        schedules: Dict[int, Tuple[float, ...]] = {}
        retries_left = runner.campaign_retry_budget
        consecutive_infra = 0
        breaker_open = False
        contended: set = set()

        # Chaos lease contention: plant a short-lived foreign ("ghost")
        # lease on the trial before its first launch; the ordinary
        # foreign-lease arbitration below must wait it out and reclaim.
        if runner.chaos is not None:
            for i, spec in enumerate(specs):
                if runner.chaos.contends_for(i):
                    ghost_ttl = min(0.25, runner.lease_ttl_s)
                    if journal is not None:
                        journal.record_lease(
                            spec.key, "chaos-ghost", 0, ghost_ttl
                        )
                    else:
                        kid = trial_key_id(spec.key)
                        leases[kid] = LeaseRecord(
                            key_id=kid,
                            owner="chaos-ghost",
                            attempt=0,
                            deadline_unix=time.time() + ghost_ttl,
                        )
                    runner._record_event("lease-contended", key=spec.key)

        def backoff_for(index: int, attempt_done: int) -> float:
            """Delay before re-attempting ``index`` (0.0 if none left)."""
            if index not in schedules:
                schedules[index] = retry_backoff_schedule(
                    runner.retry_seed,
                    specs[index].key,
                    runner.max_attempts,
                    runner.retry_backoff_base_s,
                    runner.retry_backoff_cap_s,
                )
            schedule = schedules[index]
            step = attempt_done - 1
            return schedule[step] if step < len(schedule) else 0.0

        def settle(
            index, attempt, status, elapsed, value=None, error=None,
            infra=False,
        ):
            nonlocal consecutive_infra, retries_left
            spec = specs[index]
            runner._record(spec.key, attempt, status, elapsed, error)
            if status == "ok":
                consecutive_infra = 0
                self._release(journal, spec.key, leases)
                if journal is not None:
                    journal.record_success(spec.key, value, attempt, elapsed)
                results[index] = TrialOutcome(
                    key=spec.key,
                    index=index,
                    value=value,
                    attempts=attempt,
                    wall_clock_s=elapsed,
                )
                runner._emit(results[index])
                return
            if infra:
                consecutive_infra += 1
            else:
                consecutive_infra = 0
            retry_ok = attempt < runner.max_attempts and not breaker_open
            if retry_ok and retries_left is not None:
                if retries_left <= 0:
                    retry_ok = False
                    runner._record_event(
                        "retry-budget-exhausted", key=spec.key
                    )
                else:
                    retries_left -= 1
            if retry_ok:
                delay = backoff_for(index, attempt)
                runner._record_event(
                    "retry-backoff",
                    key=spec.key,
                    detail=f"attempt {attempt + 1} in {delay:.6f}s",
                )
                pending.append((index, attempt + 1, time.monotonic() + delay))
            else:
                self._release(journal, spec.key, leases)
                if journal is not None:
                    journal.record_failure(spec.key, error or "", attempt)
                results[index] = TrialOutcome(
                    key=spec.key,
                    index=index,
                    error=error,
                    attempts=attempt,
                    wall_clock_s=elapsed,
                    timed_out=status == "timeout",
                    infrastructure=infra,
                )

        def kill(worker: _Supervised) -> None:
            # SIGKILL, not terminate(): a hung worker may ignore SIGTERM.
            # Safe on an already-exited process (the signal just bounces).
            worker.process.kill()
            worker.process.join()
            worker.conn.close()

        def launch(index: int, attempt: int) -> bool:
            """Arbitrate the lease, then start a worker; False = not yet."""
            spec = specs[index]
            kid = trial_key_id(spec.key)
            lease = leases.get(kid)
            if lease is not None and lease.owner != self.owner:
                if not lease.expired():
                    # A foreign claim is still live (previous run, or a
                    # chaos ghost): wait it out rather than double-run.
                    pending.append(
                        (index, attempt, time.monotonic() + 0.05)
                    )
                    return False
                attempt = max(attempt, lease.attempt + 1)
                attempt = min(attempt, runner.max_attempts)
                runner._record_event(
                    "lease-reclaimed",
                    key=spec.key,
                    detail=f"expired lease of {lease.owner!r}",
                )
                if index in contended:
                    contended.discard(index)
            fn, args, kwargs = spec.fn, spec.args, spec.kwargs
            heartbeats = True
            if runner.chaos is not None:
                mode = runner.chaos.mode_for(index, attempt)
                if mode is not None:
                    fn, args, kwargs = runner.chaos.wrap(
                        fn, args, kwargs, mode
                    )
                    if mode == "mute":
                        heartbeats = False
            recv_conn, send_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_supervised_worker_main,
                args=(
                    fn, args, kwargs, send_conn,
                    self.heartbeat_s, heartbeats,
                ),
                daemon=True,
            )
            try:
                process.start()
            except Exception:
                recv_conn.close()
                send_conn.close()
                results[index] = runner._run_serial(index, spec, journal)
                return True
            send_conn.close()
            now = time.monotonic()
            self._grant(journal, spec.key, attempt, leases)
            runner._record_event("lease-granted", key=spec.key)
            active.append(
                _Supervised(
                    index=index,
                    attempt=attempt,
                    process=process,
                    conn=recv_conn,
                    started=now,
                    last_beat=now,
                    lease_deadline=now + runner.lease_ttl_s,
                    timeout_deadline=(
                        now + runner.trial_timeout_s
                        if runner.trial_timeout_s is not None
                        else None
                    ),
                )
            )
            return True

        def poll(worker: _Supervised, now: float) -> bool:
            """Drain heartbeats, classify the worker, settle if terminal."""
            spec = specs[worker.index]
            elapsed = now - worker.started
            while worker.conn.poll():
                infra = False
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    message = (
                        "error",
                        "worker pipe closed before a result arrived",
                    )
                    infra = True
                except Exception as exc:
                    message = (
                        "error",
                        f"result could not be unpickled: {exc!r}",
                    )
                    infra = True
                if (
                    isinstance(message, tuple)
                    and len(message) == 2
                    and message[0] == "hb"
                ):
                    worker.last_beat = now
                    if journal is not None:
                        journal.record_heartbeat(
                            spec.key, self.owner, message[1]
                        )
                    continue
                status, payload = message
                worker.process.join()
                worker.conn.close()
                if status == "ok" and worker.process.exitcode not in (0, None):
                    status, payload, infra = (
                        "error",
                        "worker exited with code "
                        f"{worker.process.exitcode} after sending its result",
                        True,
                    )
                if status == "ok":
                    settle(
                        worker.index, worker.attempt, "ok", elapsed, payload
                    )
                else:
                    if infra:
                        # The owner is gone or its pipe is damaged: it
                        # cannot release the lease itself, so this is a
                        # reclaim, not an ordinary release.
                        runner._record_event(
                            "lease-reclaimed", key=spec.key
                        )
                    settle(
                        worker.index, worker.attempt, "error", elapsed,
                        error=payload, infra=infra,
                    )
                return True
            if not worker.process.is_alive():
                # Dead: the exit code is the diagnosis; reclaim at once.
                exitcode = worker.process.exitcode
                worker.process.join()
                worker.conn.close()
                runner._record_event(
                    "worker-dead", key=spec.key,
                    detail=f"exit code {exitcode}",
                )
                runner._record_event("lease-reclaimed", key=spec.key)
                settle(
                    worker.index, worker.attempt, "error", elapsed,
                    error=f"worker crashed (exit code {exitcode})",
                    infra=True,
                )
                return True
            if worker.timeout_deadline is not None and (
                now >= worker.timeout_deadline
            ):
                kill(worker)
                runner._record_event("lease-reclaimed", key=spec.key)
                settle(
                    worker.index, worker.attempt, "timeout", elapsed,
                    error="trial exceeded trial_timeout_s="
                          f"{runner.trial_timeout_s}",
                    infra=True,
                )
                return True
            if now - worker.last_beat > self.miss_budget_s:
                # Hung: alive but silent.  SIGKILL and reclaim the lease.
                kill(worker)
                runner._record_event(
                    "heartbeat-missed", key=spec.key,
                    detail=f"silent for {now - worker.last_beat:.3f}s",
                )
                runner._record_event("lease-reclaimed", key=spec.key)
                settle(
                    worker.index, worker.attempt, "error", elapsed,
                    error="worker hung (missed heartbeats); lease reclaimed",
                    infra=True,
                )
                return True
            if now >= worker.lease_deadline:
                # Past the lease but heartbeating: *slow*, not hung.
                if worker.extensions < runner.max_lease_extensions:
                    worker.extensions += 1
                    worker.lease_deadline = now + runner.lease_ttl_s
                    self._grant(journal, spec.key, worker.attempt, leases)
                    runner._record_event(
                        "lease-extended", key=spec.key,
                        detail=f"extension {worker.extensions}",
                    )
                else:
                    kill(worker)
                    runner._record_event("lease-reclaimed", key=spec.key)
                    settle(
                        worker.index, worker.attempt, "error", elapsed,
                        error="worker exceeded its lease after "
                              f"{worker.extensions} extensions",
                        infra=True,
                    )
                    return True
            return False

        try:
            while pending or active:
                now = time.monotonic()
                launchable = [
                    entry for entry in pending if entry[2] <= now
                ]
                while launchable and len(active) < runner.max_workers:
                    entry = launchable.pop(0)
                    pending.remove(entry)
                    launch(entry[0], entry[1])
                progressed = False
                still_active: List[_Supervised] = []
                now = time.monotonic()
                for worker in active:
                    if poll(worker, now):
                        progressed = True
                    else:
                        still_active.append(worker)
                active[:] = still_active
                if consecutive_infra >= runner.breaker_threshold and (
                    not breaker_open
                ):
                    breaker_open = True
                    break
                if (pending or active) and not progressed:
                    time.sleep(
                        min(runner.poll_interval_s, self.heartbeat_s / 2.0)
                    )
        finally:
            for worker in active:  # interrupted or degrading: no stragglers
                kill(worker)
            active[:] = []

        if breaker_open:
            runner._record_event(
                "breaker-open",
                detail=f"{consecutive_infra} consecutive "
                "infrastructure failures",
            )
            if journal is not None:
                journal.record_campaign_event(
                    "breaker-open", f"{consecutive_infra} consecutive"
                )
            results = self._degrade(specs, results, journal)

        # Bottom rung regardless of the breaker: anything that ended as
        # an *infrastructure* failure gets one chaos-free serial pass —
        # serial execution has no infrastructure to fail.
        results = self._serial_rescue(specs, results, journal)
        return [outcome for outcome in results if outcome is not None]

    # -- degradation ladder --------------------------------------------------

    def _degrade(self, specs, results, journal):
        """Breaker open: finish the campaign on the plain process pool.

        Unfinished trials *and* trials that already failed terminally
        from infrastructure are re-run chaos-free one rung down; their
        journal failure records are superseded by the new outcomes.
        """
        runner = self.runner
        remaining = [
            i for i, outcome in enumerate(results)
            if outcome is None
            or (not outcome.ok and outcome.infrastructure)
        ]
        runner._record_event(
            "degraded",
            detail="local-supervised->local-process "
            f"({len(remaining)} trials)",
        )
        if journal is not None:
            journal.record_campaign_event(
                "degraded", "local-supervised->local-process"
            )
        if not remaining:
            return results
        saved_chaos = runner.chaos
        runner.chaos = None  # sabotage made its point; now finish the run
        try:
            sub = LocalProcessBackend(runner).run(
                [specs[i] for i in remaining], journal
            )
        finally:
            runner.chaos = saved_chaos
        for outcome in sub:
            index = remaining[outcome.index]
            results[index] = dataclasses.replace(outcome, index=index)
        return results

    def _serial_rescue(self, specs, results, journal):
        """Re-run infrastructure-failed trials in-process (final rung)."""
        runner = self.runner
        rescue = [
            i for i, outcome in enumerate(results)
            if outcome is not None
            and not outcome.ok
            and outcome.infrastructure
        ]
        if not rescue:
            return results
        runner._record_event(
            "degraded",
            detail=f"local-process->local-serial ({len(rescue)} trials)",
        )
        if journal is not None:
            journal.record_campaign_event(
                "degraded", "local-process->local-serial"
            )
        saved_chaos = runner.chaos
        runner.chaos = None
        try:
            for index in rescue:
                results[index] = runner._run_serial(
                    index, specs[index], journal
                )
        finally:
            runner.chaos = saved_chaos
        return results


# -- registry entries ---------------------------------------------------------


def _factory(name: str, cls) -> Callable[[TrialRunner], ExecutionBackend]:
    @register("backend", name)
    def make(runner: TrialRunner) -> ExecutionBackend:
        return cls(runner)

    make.__qualname__ = f"make_{name.replace('-', '_')}"
    return make


_factory("local-serial", LocalSerialBackend)
_factory("local-process", LocalProcessBackend)
_factory("local-supervised", SupervisedBackend)


@register("backend", "auto")
def make_auto(runner: TrialRunner) -> ExecutionBackend:
    """Serial for one worker, the plain pool otherwise (historic default)."""
    if runner.max_workers == 1:
        return LocalSerialBackend(runner)
    return LocalProcessBackend(runner)
