"""Parallel trial execution: fan independent seeded trials across processes.

Every campaign this tool exists to run — the Fig. 4 fundamental diagram
(20 trials per density), the Figs. 8-11 protocol comparisons, parameter
sweeps, Monte-Carlo ensembles — is an embarrassingly-parallel set of
independent ``(spec, seed)`` trials.  :class:`TrialRunner` executes such a
set with:

* **deterministic results** — a trial's output is a pure function of its
  :class:`TrialSpec` arguments (seeds are derived *before* submission), so
  ``max_workers=4`` is bit-identical to ``max_workers=1``;
* **bounded trials** — ``trial_timeout_s`` kills a stuck worker;
* **automatic retry** — a crashed or timed-out trial is re-launched up to
  ``max_attempts`` times;
* **graceful degradation** — ``max_workers=1``, an unavailable
  ``multiprocessing`` layer, or a failed worker launch all fall back to
  plain in-process serial execution;
* **observability** — every attempt is reported to a
  :class:`repro.metrics.collector.CampaignTelemetry`;
* **crash-safety** — pass a :class:`repro.core.journal.TrialJournal` to
  :meth:`TrialRunner.run` and every completed trial is durably recorded
  before the campaign moves on; trials already present in the journal are
  *resumed* (their recorded values returned without re-running) and show
  up in telemetry as ``"resumed"`` records.

*Where* the trials execute is an :class:`~repro.core.backend.
ExecutionBackend` resolved by name through the ``backend`` registry
namespace: ``"local-serial"`` (in-process), ``"local-process"`` (the
process pool), ``"local-supervised"`` (lease/heartbeat-supervised pool
with deterministic retry backoff and a degradation ladder), or ``"auto"``
(serial for ``max_workers=1``, the pool otherwise).  This class keeps the
campaign-level concerns every backend shares — journal resume filtering,
telemetry, the low-level worker mechanics backends borrow — and delegates
execution itself.

One process per trial keeps the failure domain small (a crashing trial
cannot take unrelated trials with it, unlike a shared pool) and makes the
timeout semantics exact: the stuck process is terminated, not abandoned.
Simulation trials run for seconds, so process start-up cost is noise.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_module
import threading
import time
import traceback
from typing import (
    Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple,
)

from repro.core import registry as _registry
from repro.core.journal import TrialJournal, trial_key_id
from repro.metrics.collector import CampaignTelemetry, TrialRecord
from repro.util.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class TrialSpec:
    """One unit of independent work: call ``fn(*args, **kwargs)``.

    ``fn`` must be deterministic in its arguments (derive any random
    generator *inside* the function from a seed passed as an argument);
    that is what makes parallel execution reproducible.

    Attributes:
        key: caller-chosen identity, carried through to the outcome and
            telemetry (e.g. ``(density, trial)``).
        fn: the trial function; with worker processes its return value
            must be picklable.
        args / kwargs: positional and keyword arguments for ``fn``.
    """

    key: Any
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class TrialOutcome:
    """The terminal result of one trial (after any retries).

    Attributes:
        key: the spec's key.
        index: the spec's position in the submitted sequence.
        value: ``fn``'s return value (``None`` when the trial failed).
        error: diagnostic text when every attempt failed.
        attempts: how many attempts were made.
        wall_clock_s: duration of the final attempt.
        timed_out: whether the final attempt hit ``trial_timeout_s``.
        infrastructure: whether the terminal failure was *infrastructure*
            (worker crash, timeout, pipe/unpickle damage — things a retry
            elsewhere could fix) rather than an exception raised by the
            trial function itself.  Execution backends use the
            distinction for circuit breaking and degradation.
    """

    key: Any
    index: int
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    wall_clock_s: float = 0.0
    timed_out: bool = False
    infrastructure: bool = False

    @property
    def ok(self) -> bool:
        """Whether the trial ultimately produced a value."""
        return self.error is None


def _worker_main(fn, args, kwargs, conn) -> None:
    """Worker-process entry point: run the trial, ship back the result.

    Exceptions travel back as data, not as process death, so an ordinary
    Python error never breaks the campaign.  Only a hard crash (segfault,
    OOM kill) leaves the parent to diagnose an empty pipe.
    """
    try:
        value = fn(*args, **kwargs)
        try:
            conn.send(("ok", value))
        except Exception as exc:  # result not picklable / pipe gone
            conn.send(("error", f"result could not be returned: {exc!r}"))
    except BaseException as exc:
        conn.send(
            ("error", f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
        )
    finally:
        conn.close()


@dataclasses.dataclass
class _Active:
    """Book-keeping for one in-flight worker process."""

    index: int
    attempt: int
    process: Any
    conn: Any
    started: float
    deadline: Optional[float]


class TrialRunner:
    """Execute a sequence of :class:`TrialSpec` with bounded parallelism.

    Args:
        max_workers: worker processes; ``1`` runs everything in-process
            under the ``"auto"`` backend (no pickling requirements, no
            timeout enforcement).
        trial_timeout_s: per-attempt wall-clock bound; a worker exceeding
            it is terminated and the trial retried.  Only enforceable by
            the process-based backends (a serial trial cannot be
            preempted).
        max_attempts: total tries per trial (1 = no retry).
        telemetry: optional :class:`CampaignTelemetry` receiving one
            :class:`TrialRecord` per attempt (and, under the supervised
            backend, one :class:`~repro.metrics.collector.CampaignEvent`
            per supervision action).
        backend: execution-backend name resolved through the ``backend``
            registry namespace — ``"auto"`` (default), ``"local-serial"``,
            ``"local-process"`` or ``"local-supervised"``.
        lease_ttl_s: supervised backend only — lease duration granted per
            worker launch; a worker that heartbeats but runs past it gets
            extensions, an owner that goes silent loses it.
        heartbeat_interval_s: supervised backend only — worker heartbeat
            period (``None`` derives it from ``lease_ttl_s``).
        max_lease_extensions: supervised backend only — deadline
            extensions a slow-but-alive worker may receive before being
            treated as hung.
        breaker_threshold: supervised backend only — consecutive
            *infrastructure* failures (crashes, timeouts, pipe damage —
            not trial exceptions) that open the circuit breaker and
            degrade the campaign down the backend ladder.
        retry_seed: supervised backend only — root seed of the per-trial
            named RNG streams that jitter retry backoff, so retry
            schedules are themselves reproducible.
        retry_backoff_base_s / retry_backoff_cap_s: supervised backend
            only — exponential backoff shape for retries.
        campaign_retry_budget: supervised backend only — total retries
            allowed across the whole campaign (``None`` = unlimited);
            once spent, failing trials fail terminally instead of
            retrying.
        queue_dir: dir-queue backend only — the shared queue directory
            trials are scheduled through (any host's ``repro worker``
            pointed at the same directory joins the campaign).  ``None``
            uses a private temporary directory, which still exercises
            the full claim/fencing protocol but only local workers can
            join.
        quarantine_after: dir-queue backend only — distinct workers one
            trial may kill before it is parked in quarantine instead of
            being reclaimed again.
        on_outcome: optional streaming callback, called with each
            :class:`TrialOutcome` exactly once per trial key as results
            become available (successes eagerly, failures when the
            campaign settles them; resumed trials immediately).  This is
            the push half of :meth:`stream`.
        chaos: TEST-ONLY failure injector (a
            :class:`repro.core.chaos.ChaosMonkey`).  Consulted per
            worker launch; sabotaged attempts run the real trial and
            then fail for real (SIGKILL, hang, corrupt payload,
            heartbeat suppression, lease contention), so the
            retry/journal machinery is exercised end to end.  Only
            meaningful on process-based backends — the serial path runs
            in-process and is never sabotaged.  Production campaigns
            must leave this ``None``.
    """

    def __init__(
        self,
        max_workers: int = 1,
        trial_timeout_s: Optional[float] = None,
        max_attempts: int = 2,
        telemetry: Optional[CampaignTelemetry] = None,
        poll_interval_s: float = 0.02,
        chaos: Optional["ChaosMonkey"] = None,
        backend: str = "auto",
        lease_ttl_s: float = 30.0,
        heartbeat_interval_s: Optional[float] = None,
        max_lease_extensions: int = 4,
        breaker_threshold: int = 5,
        retry_seed: int = 0,
        retry_backoff_base_s: float = 0.05,
        retry_backoff_cap_s: float = 2.0,
        campaign_retry_budget: Optional[int] = None,
        queue_dir: Optional[str] = None,
        quarantine_after: int = 3,
        on_outcome: Optional[Callable[[TrialOutcome], None]] = None,
    ) -> None:
        if max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        if max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
        if trial_timeout_s is not None and trial_timeout_s <= 0:
            raise ConfigError(
                f"trial_timeout_s must be > 0, got {trial_timeout_s}"
            )
        if lease_ttl_s <= 0:
            raise ConfigError(f"lease_ttl_s must be > 0, got {lease_ttl_s}")
        if heartbeat_interval_s is not None and heartbeat_interval_s <= 0:
            raise ConfigError(
                f"heartbeat_interval_s must be > 0, got {heartbeat_interval_s}"
            )
        if max_lease_extensions < 0:
            raise ConfigError(
                f"max_lease_extensions must be >= 0, got {max_lease_extensions}"
            )
        if breaker_threshold < 1:
            raise ConfigError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        if campaign_retry_budget is not None and campaign_retry_budget < 0:
            raise ConfigError(
                "campaign_retry_budget must be >= 0 or None, got "
                f"{campaign_retry_budget}"
            )
        if quarantine_after < 1:
            raise ConfigError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.max_workers = int(max_workers)
        self.trial_timeout_s = trial_timeout_s
        self.max_attempts = int(max_attempts)
        self.telemetry = telemetry
        self.poll_interval_s = poll_interval_s
        self.chaos = chaos
        # Validate the backend name eagerly: an unknown backend should
        # fail at construction with the live list of choices, not after
        # the campaign's first trials have already run.
        self.backend = _registry.normalize("backend", backend)
        self.lease_ttl_s = float(lease_ttl_s)
        self.heartbeat_interval_s = heartbeat_interval_s
        self.max_lease_extensions = int(max_lease_extensions)
        self.breaker_threshold = int(breaker_threshold)
        self.retry_seed = int(retry_seed)
        self.retry_backoff_base_s = float(retry_backoff_base_s)
        self.retry_backoff_cap_s = float(retry_backoff_cap_s)
        self.campaign_retry_budget = campaign_retry_budget
        self.queue_dir = None if queue_dir is None else str(queue_dir)
        self.quarantine_after = int(quarantine_after)
        self.on_outcome = on_outcome
        self._emitted: set = set()

    # -- public API ---------------------------------------------------------

    def run(
        self,
        specs: Sequence[TrialSpec],
        journal: Optional[TrialJournal] = None,
    ) -> List[TrialOutcome]:
        """Run every spec; outcomes come back in submission order.

        With ``journal`` given, specs whose key is already completed in the
        journal are returned from their recorded values without re-running
        (reported to telemetry as ``"resumed"``), and every freshly
        completed trial is durably journalled *before* the campaign
        proceeds — so an interrupted campaign resumes at the exact trial
        boundary it died at.  Specs whose key the journal holds in
        *quarantine* (a dir-queue poison trial) are not re-run either:
        they come back as terminal infrastructure failures until a human
        un-parks them.
        """
        specs = list(specs)
        if not specs:
            return []
        self._emitted = set()
        outcomes: List[Optional[TrialOutcome]] = [None] * len(specs)
        fresh: List[Tuple[int, TrialSpec]] = []
        if journal is not None:
            for index, spec in enumerate(specs):
                key_id = trial_key_id(spec.key)
                entry = journal.completed.get(key_id)
                parked = journal.quarantined.get(key_id)
                if entry is not None:
                    outcomes[index] = TrialOutcome(
                        key=spec.key,
                        index=index,
                        value=entry.value,
                        attempts=entry.attempts,
                        wall_clock_s=entry.wall_clock_s,
                    )
                    self._record(spec.key, entry.attempts, "resumed", 0.0)
                    self._emit(outcomes[index])
                elif parked is not None:
                    outcomes[index] = TrialOutcome(
                        key=spec.key,
                        index=index,
                        error=(
                            "quarantined: killed "
                            f"{len(parked.owners)} distinct workers\n"
                            f"{parked.traceback}"
                        ),
                        attempts=parked.attempts,
                        infrastructure=True,
                    )
                    self._record_event(
                        "quarantined", key=spec.key,
                        detail="skipped on resume (still parked)",
                    )
                else:
                    fresh.append((index, spec))
        else:
            fresh = list(enumerate(specs))
        if fresh:
            # Backends see a dense spec list (resume holes removed) with
            # indices 0..len-1; outcome indices are remapped onto the
            # caller's positions here, so backends never need to know
            # about the journal's resume filtering.
            execution = _registry.resolve("backend", self.backend)(self)
            for outcome in execution.run(
                [spec for _, spec in fresh], journal
            ):
                index = fresh[outcome.index][0]
                outcomes[index] = dataclasses.replace(outcome, index=index)
        # Flush anything a backend did not emit eagerly (failures,
        # quarantines, serial-rescue re-runs); _emit dedupes by key, so
        # eagerly streamed successes are not repeated.
        for outcome in outcomes:
            if outcome is not None:
                self._emit(outcome)
        return [outcome for outcome in outcomes if outcome is not None]

    def stream(
        self,
        specs: Sequence[TrialSpec],
        journal: Optional[TrialJournal] = None,
    ) -> Iterator[TrialOutcome]:
        """Run the campaign, yielding each outcome as it becomes available.

        The pull half of the streaming API: :meth:`run` executes on a
        worker thread while this generator yields outcomes in completion
        order (successes as backends commit them, failures when they
        settle) — each trial key exactly once.  Any exception the run
        raises is re-raised here after the in-flight outcomes have been
        drained.  Not reentrant: one ``stream``/``run`` per runner at a
        time.
        """
        feed: "queue_module.Queue" = queue_module.Queue()
        done = object()
        caller_callback = self.on_outcome

        def push(outcome: TrialOutcome) -> None:
            if caller_callback is not None:
                caller_callback(outcome)
            feed.put(outcome)

        state: Dict[str, Any] = {}

        def work() -> None:
            try:
                state["outcomes"] = self.run(specs, journal)
            except BaseException as exc:  # re-raised on the caller's side
                state["error"] = exc
            finally:
                feed.put(done)

        self.on_outcome = push
        thread = threading.Thread(target=work, daemon=True)
        thread.start()
        try:
            while True:
                item = feed.get()
                if item is done:
                    break
                yield item
        finally:
            thread.join()
            self.on_outcome = caller_callback
        if "error" in state:
            raise state["error"]

    # -- serial path --------------------------------------------------------

    def _run_serial(
        self,
        index: int,
        spec: TrialSpec,
        journal: Optional[TrialJournal] = None,
    ) -> TrialOutcome:
        """In-process execution with the same retry semantics as the pool."""
        error = None
        for attempt in range(1, self.max_attempts + 1):
            started = time.perf_counter()
            try:
                value = spec.fn(*spec.args, **spec.kwargs)
            except Exception as exc:
                elapsed = time.perf_counter() - started
                error = (
                    f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
                )
                self._record(spec.key, attempt, "error", elapsed, error)
                continue
            elapsed = time.perf_counter() - started
            self._record(spec.key, attempt, "ok", elapsed)
            if journal is not None:
                journal.record_success(spec.key, value, attempt, elapsed)
            outcome = TrialOutcome(
                key=spec.key,
                index=index,
                value=value,
                attempts=attempt,
                wall_clock_s=elapsed,
            )
            self._emit(outcome)
            return outcome
        if journal is not None:
            journal.record_failure(spec.key, error or "", self.max_attempts)
        return TrialOutcome(
            key=spec.key,
            index=index,
            error=error,
            attempts=self.max_attempts,
        )

    # -- parallel path ------------------------------------------------------

    @staticmethod
    def _context():
        """A multiprocessing context, or ``None`` to degrade to serial.

        Forking servers inherit the parent's memory, so even closures and
        monkey-patched module state behave identically to serial runs;
        where only ``spawn`` exists the specs must be picklable, and any
        launch failure degrades the affected trials to in-process runs.
        """
        try:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else None
            return multiprocessing.get_context(method)
        except Exception:
            return None

    def _launch(self, context, spec: TrialSpec, index: int, attempt: int):
        """Start one worker process for one attempt."""
        fn, args, kwargs = spec.fn, spec.args, spec.kwargs
        if self.chaos is not None:
            mode = self.chaos.mode_for(index, attempt)
            if mode is not None:
                fn, args, kwargs = self.chaos.wrap(fn, args, kwargs, mode)
        recv_conn, send_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_main,
            args=(fn, args, kwargs, send_conn),
            daemon=True,
        )
        process.start()
        send_conn.close()  # keep only the child's handle on the write end
        started = time.monotonic()
        deadline = (
            started + self.trial_timeout_s
            if self.trial_timeout_s is not None
            else None
        )
        return _Active(
            index=index,
            attempt=attempt,
            process=process,
            conn=recv_conn,
            started=started,
            deadline=deadline,
        )

    def _poll(self, worker: _Active, now: float, settle) -> bool:
        """Check one in-flight worker; returns True when it was settled.

        ``settle`` receives an ``infra=`` flag distinguishing
        *infrastructure* failures — parent-diagnosed damage (pipe closed,
        unpickle failure, suspect exit code, crash, timeout) that a retry
        on healthy infrastructure could fix — from trial errors the
        worker itself reported.  The supervised backend's circuit breaker
        counts only the former.
        """
        elapsed = now - worker.started
        if worker.conn.poll():
            infra = False
            try:
                status, payload = worker.conn.recv()
            except (EOFError, OSError):
                status, payload, infra = (
                    "error",
                    "worker pipe closed before a result arrived",
                    True,
                )
            except Exception as exc:
                # The payload crossed the pipe but failed to *unpickle* on
                # this side (e.g. its class raises in __setstate__).  That
                # must count as a failed attempt and retry — not escape and
                # kill the whole campaign loop.
                status, payload, infra = (
                    "error",
                    f"result could not be unpickled: {exc!r}",
                    True,
                )
            worker.process.join()
            worker.conn.close()
            if status == "ok" and worker.process.exitcode not in (None, 0):
                # The worker died after sending but with a failure exit:
                # treat the result as suspect and retry the attempt.
                status, payload, infra = (
                    "error",
                    "worker exited with code "
                    f"{worker.process.exitcode} after sending its result",
                    True,
                )
            if status == "ok":
                settle(worker.index, worker.attempt, "ok", elapsed, payload)
            else:
                settle(
                    worker.index, worker.attempt, "error", elapsed,
                    error=payload, infra=infra,
                )
            return True
        if not worker.process.is_alive():
            exitcode = worker.process.exitcode
            worker.process.join()
            worker.conn.close()
            settle(
                worker.index, worker.attempt, "error", elapsed,
                error=f"worker crashed (exit code {exitcode})", infra=True,
            )
            return True
        if worker.deadline is not None and now >= worker.deadline:
            worker.process.terminate()
            worker.process.join()
            worker.conn.close()
            settle(
                worker.index, worker.attempt, "timeout", elapsed,
                error="trial exceeded trial_timeout_s="
                      f"{self.trial_timeout_s}",
                infra=True,
            )
            return True
        return False

    # -- telemetry ----------------------------------------------------------

    def _record(self, key, attempt, status, wall_clock_s, error=None) -> None:
        if self.telemetry is not None:
            self.telemetry.record(
                TrialRecord(
                    key=key,
                    attempt=attempt,
                    status=status,
                    wall_clock_s=wall_clock_s,
                    error=error,
                )
            )

    def _record_event(self, kind: str, key=None, detail: str = "") -> None:
        """Forward one supervision event to telemetry (if attached)."""
        if self.telemetry is not None:
            self.telemetry.record_event(kind, key=key, detail=detail)

    # -- streaming ----------------------------------------------------------

    def _emit(self, outcome: TrialOutcome) -> None:
        """Push one outcome to the streaming callback, once per key.

        Backends call this eagerly for successes; :meth:`run` flushes
        everything else at the end.  Dedupe by key identity is what makes
        both safe: degradation ladders re-run trials, and a re-run of an
        already-emitted key must not reach the consumer twice.  The
        outcome's ``index`` may still be dense (backend-relative) when
        emitted eagerly — streaming consumers identify trials by key.
        """
        key_id = trial_key_id(outcome.key)
        if key_id in self._emitted:
            return
        self._emitted.add(key_id)
        if self.on_outcome is not None:
            self.on_outcome(outcome)


def run_trials(
    specs: Sequence[TrialSpec],
    max_workers: int = 1,
    trial_timeout_s: Optional[float] = None,
    max_attempts: int = 2,
    telemetry: Optional[CampaignTelemetry] = None,
    journal: Optional[TrialJournal] = None,
    backend: str = "auto",
    lease_ttl_s: float = 30.0,
) -> List[TrialOutcome]:
    """Convenience wrapper: build a :class:`TrialRunner` and run ``specs``."""
    return TrialRunner(
        max_workers=max_workers,
        trial_timeout_s=trial_timeout_s,
        max_attempts=max_attempts,
        telemetry=telemetry,
        backend=backend,
        lease_ttl_s=lease_ttl_s,
    ).run(specs, journal=journal)
