"""Parallel trial execution: fan independent seeded trials across processes.

Every campaign this tool exists to run — the Fig. 4 fundamental diagram
(20 trials per density), the Figs. 8-11 protocol comparisons, parameter
sweeps, Monte-Carlo ensembles — is an embarrassingly-parallel set of
independent ``(spec, seed)`` trials.  :class:`TrialRunner` executes such a
set across worker processes with:

* **deterministic results** — a trial's output is a pure function of its
  :class:`TrialSpec` arguments (seeds are derived *before* submission), so
  ``max_workers=4`` is bit-identical to ``max_workers=1``;
* **bounded trials** — ``trial_timeout_s`` kills a stuck worker;
* **automatic retry** — a crashed or timed-out trial is re-launched up to
  ``max_attempts`` times;
* **graceful degradation** — ``max_workers=1``, an unavailable
  ``multiprocessing`` layer, or a failed worker launch all fall back to
  plain in-process serial execution;
* **observability** — every attempt is reported to a
  :class:`repro.metrics.collector.CampaignTelemetry`;
* **crash-safety** — pass a :class:`repro.core.journal.TrialJournal` to
  :meth:`TrialRunner.run` and every completed trial is durably recorded
  before the campaign moves on; trials already present in the journal are
  *resumed* (their recorded values returned without re-running) and show
  up in telemetry as ``"resumed"`` records.

One process per trial keeps the failure domain small (a crashing trial
cannot take unrelated trials with it, unlike a shared pool) and makes the
timeout semantics exact: the stuck process is terminated, not abandoned.
Simulation trials run for seconds, so process start-up cost is noise.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.journal import TrialJournal, trial_key_id
from repro.metrics.collector import CampaignTelemetry, TrialRecord
from repro.util.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class TrialSpec:
    """One unit of independent work: call ``fn(*args, **kwargs)``.

    ``fn`` must be deterministic in its arguments (derive any random
    generator *inside* the function from a seed passed as an argument);
    that is what makes parallel execution reproducible.

    Attributes:
        key: caller-chosen identity, carried through to the outcome and
            telemetry (e.g. ``(density, trial)``).
        fn: the trial function; with worker processes its return value
            must be picklable.
        args / kwargs: positional and keyword arguments for ``fn``.
    """

    key: Any
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class TrialOutcome:
    """The terminal result of one trial (after any retries).

    Attributes:
        key: the spec's key.
        index: the spec's position in the submitted sequence.
        value: ``fn``'s return value (``None`` when the trial failed).
        error: diagnostic text when every attempt failed.
        attempts: how many attempts were made.
        wall_clock_s: duration of the final attempt.
        timed_out: whether the final attempt hit ``trial_timeout_s``.
    """

    key: Any
    index: int
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    wall_clock_s: float = 0.0
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        """Whether the trial ultimately produced a value."""
        return self.error is None


def _worker_main(fn, args, kwargs, conn) -> None:
    """Worker-process entry point: run the trial, ship back the result.

    Exceptions travel back as data, not as process death, so an ordinary
    Python error never breaks the campaign.  Only a hard crash (segfault,
    OOM kill) leaves the parent to diagnose an empty pipe.
    """
    try:
        value = fn(*args, **kwargs)
        try:
            conn.send(("ok", value))
        except Exception as exc:  # result not picklable / pipe gone
            conn.send(("error", f"result could not be returned: {exc!r}"))
    except BaseException as exc:
        conn.send(
            ("error", f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
        )
    finally:
        conn.close()


@dataclasses.dataclass
class _Active:
    """Book-keeping for one in-flight worker process."""

    index: int
    attempt: int
    process: Any
    conn: Any
    started: float
    deadline: Optional[float]


class TrialRunner:
    """Execute a sequence of :class:`TrialSpec` with bounded parallelism.

    Args:
        max_workers: worker processes; ``1`` runs everything in-process
            (no pickling requirements, no timeout enforcement).
        trial_timeout_s: per-attempt wall-clock bound; a worker exceeding
            it is terminated and the trial retried.  Only enforceable with
            ``max_workers > 1`` (a serial trial cannot be preempted).
        max_attempts: total tries per trial (1 = no retry).
        telemetry: optional :class:`CampaignTelemetry` receiving one
            :class:`TrialRecord` per attempt.
        chaos: TEST-ONLY failure injector (a
            :class:`repro.core.chaos.ChaosMonkey`).  Consulted per
            worker launch; sabotaged attempts run the real trial and
            then fail for real (SIGKILL, hang, corrupt payload), so the
            retry/journal machinery is exercised end to end.  Only
            meaningful with ``max_workers > 1`` — the serial path runs
            in-process and is never sabotaged.  Production campaigns
            must leave this ``None``.
    """

    def __init__(
        self,
        max_workers: int = 1,
        trial_timeout_s: Optional[float] = None,
        max_attempts: int = 2,
        telemetry: Optional[CampaignTelemetry] = None,
        poll_interval_s: float = 0.02,
        chaos: Optional["ChaosMonkey"] = None,
    ) -> None:
        if max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        if max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
        if trial_timeout_s is not None and trial_timeout_s <= 0:
            raise ConfigError(
                f"trial_timeout_s must be > 0, got {trial_timeout_s}"
            )
        self.max_workers = int(max_workers)
        self.trial_timeout_s = trial_timeout_s
        self.max_attempts = int(max_attempts)
        self.telemetry = telemetry
        self.poll_interval_s = poll_interval_s
        self.chaos = chaos

    # -- public API ---------------------------------------------------------

    def run(
        self,
        specs: Sequence[TrialSpec],
        journal: Optional[TrialJournal] = None,
    ) -> List[TrialOutcome]:
        """Run every spec; outcomes come back in submission order.

        With ``journal`` given, specs whose key is already completed in the
        journal are returned from their recorded values without re-running
        (reported to telemetry as ``"resumed"``), and every freshly
        completed trial is durably journalled *before* the campaign
        proceeds — so an interrupted campaign resumes at the exact trial
        boundary it died at.
        """
        specs = list(specs)
        if not specs:
            return []
        outcomes: List[Optional[TrialOutcome]] = [None] * len(specs)
        fresh: List[Tuple[int, TrialSpec]] = []
        if journal is not None:
            for index, spec in enumerate(specs):
                entry = journal.completed.get(trial_key_id(spec.key))
                if entry is not None:
                    outcomes[index] = TrialOutcome(
                        key=spec.key,
                        index=index,
                        value=entry.value,
                        attempts=entry.attempts,
                        wall_clock_s=entry.wall_clock_s,
                    )
                    self._record(spec.key, entry.attempts, "resumed", 0.0)
                else:
                    fresh.append((index, spec))
        else:
            fresh = list(enumerate(specs))
        if fresh:
            context = None if self.max_workers == 1 else self._context()
            if context is None:
                for index, spec in fresh:
                    outcomes[index] = self._run_serial(index, spec, journal)
            else:
                for outcome in self._run_pool(
                    [spec for _, spec in fresh], context, journal
                ):
                    index = fresh[outcome.index][0]
                    outcomes[index] = dataclasses.replace(
                        outcome, index=index
                    )
        return [outcome for outcome in outcomes if outcome is not None]

    # -- serial path --------------------------------------------------------

    def _run_serial(
        self,
        index: int,
        spec: TrialSpec,
        journal: Optional[TrialJournal] = None,
    ) -> TrialOutcome:
        """In-process execution with the same retry semantics as the pool."""
        error = None
        for attempt in range(1, self.max_attempts + 1):
            started = time.perf_counter()
            try:
                value = spec.fn(*spec.args, **spec.kwargs)
            except Exception as exc:
                elapsed = time.perf_counter() - started
                error = (
                    f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
                )
                self._record(spec.key, attempt, "error", elapsed, error)
                continue
            elapsed = time.perf_counter() - started
            self._record(spec.key, attempt, "ok", elapsed)
            if journal is not None:
                journal.record_success(spec.key, value, attempt, elapsed)
            return TrialOutcome(
                key=spec.key,
                index=index,
                value=value,
                attempts=attempt,
                wall_clock_s=elapsed,
            )
        if journal is not None:
            journal.record_failure(spec.key, error or "", self.max_attempts)
        return TrialOutcome(
            key=spec.key,
            index=index,
            error=error,
            attempts=self.max_attempts,
        )

    # -- parallel path ------------------------------------------------------

    @staticmethod
    def _context():
        """A multiprocessing context, or ``None`` to degrade to serial.

        Forking servers inherit the parent's memory, so even closures and
        monkey-patched module state behave identically to serial runs;
        where only ``spawn`` exists the specs must be picklable, and any
        launch failure degrades the affected trials to in-process runs.
        """
        try:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else None
            return multiprocessing.get_context(method)
        except Exception:
            return None

    def _launch(self, context, spec: TrialSpec, index: int, attempt: int):
        """Start one worker process for one attempt."""
        fn, args, kwargs = spec.fn, spec.args, spec.kwargs
        if self.chaos is not None:
            mode = self.chaos.mode_for(index, attempt)
            if mode is not None:
                fn, args, kwargs = self.chaos.wrap(fn, args, kwargs, mode)
        recv_conn, send_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_main,
            args=(fn, args, kwargs, send_conn),
            daemon=True,
        )
        process.start()
        send_conn.close()  # keep only the child's handle on the write end
        started = time.monotonic()
        deadline = (
            started + self.trial_timeout_s
            if self.trial_timeout_s is not None
            else None
        )
        return _Active(
            index=index,
            attempt=attempt,
            process=process,
            conn=recv_conn,
            started=started,
            deadline=deadline,
        )

    def _run_pool(self, specs, context, journal=None) -> List[TrialOutcome]:
        results: List[Optional[TrialOutcome]] = [None] * len(specs)
        pending: List[Tuple[int, int]] = [(i, 1) for i in range(len(specs))]
        pending.reverse()  # pop() from the end == FIFO over trial indices
        active: List[_Active] = []

        def settle(index, attempt, status, elapsed, value=None, error=None):
            """Record the attempt; either finish the trial or queue a retry."""
            spec = specs[index]
            self._record(spec.key, attempt, status, elapsed, error)
            if status == "ok":
                if journal is not None:
                    journal.record_success(spec.key, value, attempt, elapsed)
                results[index] = TrialOutcome(
                    key=spec.key,
                    index=index,
                    value=value,
                    attempts=attempt,
                    wall_clock_s=elapsed,
                )
            elif attempt < self.max_attempts:
                pending.insert(0, (index, attempt + 1))
            else:
                if journal is not None:
                    journal.record_failure(spec.key, error or "", attempt)
                results[index] = TrialOutcome(
                    key=spec.key,
                    index=index,
                    error=error,
                    attempts=attempt,
                    wall_clock_s=elapsed,
                    timed_out=status == "timeout",
                )

        try:
            while pending or active:
                while pending and len(active) < self.max_workers:
                    index, attempt = pending.pop()
                    try:
                        active.append(
                            self._launch(context, specs[index], index, attempt)
                        )
                    except Exception:
                        # Cannot start a worker (resources, pickling, ...):
                        # degrade this trial to an in-process run.
                        results[index] = self._run_serial(
                            index, specs[index], journal
                        )
                progressed = False
                still_active: List[_Active] = []
                now = time.monotonic()
                for worker in active:
                    finished = self._poll(worker, now, settle)
                    if finished:
                        progressed = True
                    else:
                        still_active.append(worker)
                active = still_active
                if active and not progressed:
                    time.sleep(self.poll_interval_s)
        finally:
            for worker in active:  # interrupted: leave no stragglers behind
                worker.process.terminate()
                worker.process.join()
                worker.conn.close()
        return [outcome for outcome in results if outcome is not None]

    def _poll(self, worker: _Active, now: float, settle) -> bool:
        """Check one in-flight worker; returns True when it was settled."""
        elapsed = now - worker.started
        if worker.conn.poll():
            try:
                status, payload = worker.conn.recv()
            except (EOFError, OSError):
                status, payload = (
                    "error",
                    "worker pipe closed before a result arrived",
                )
            except Exception as exc:
                # The payload crossed the pipe but failed to *unpickle* on
                # this side (e.g. its class raises in __setstate__).  That
                # must count as a failed attempt and retry — not escape and
                # kill the whole campaign loop.
                status, payload = (
                    "error",
                    f"result could not be unpickled: {exc!r}",
                )
            worker.process.join()
            worker.conn.close()
            if status == "ok" and worker.process.exitcode not in (None, 0):
                # The worker died after sending but with a failure exit:
                # treat the result as suspect and retry the attempt.
                status, payload = (
                    "error",
                    "worker exited with code "
                    f"{worker.process.exitcode} after sending its result",
                )
            if status == "ok":
                settle(worker.index, worker.attempt, "ok", elapsed, payload)
            else:
                settle(
                    worker.index, worker.attempt, "error", elapsed,
                    error=payload,
                )
            return True
        if not worker.process.is_alive():
            exitcode = worker.process.exitcode
            worker.process.join()
            worker.conn.close()
            settle(
                worker.index, worker.attempt, "error", elapsed,
                error=f"worker crashed (exit code {exitcode})",
            )
            return True
        if worker.deadline is not None and now >= worker.deadline:
            worker.process.terminate()
            worker.process.join()
            worker.conn.close()
            settle(
                worker.index, worker.attempt, "timeout", elapsed,
                error="trial exceeded trial_timeout_s="
                      f"{self.trial_timeout_s}",
            )
            return True
        return False

    # -- telemetry ----------------------------------------------------------

    def _record(self, key, attempt, status, wall_clock_s, error=None) -> None:
        if self.telemetry is not None:
            self.telemetry.record(
                TrialRecord(
                    key=key,
                    attempt=attempt,
                    status=status,
                    wall_clock_s=wall_clock_s,
                    error=error,
                )
            )


def run_trials(
    specs: Sequence[TrialSpec],
    max_workers: int = 1,
    trial_timeout_s: Optional[float] = None,
    max_attempts: int = 2,
    telemetry: Optional[CampaignTelemetry] = None,
    journal: Optional[TrialJournal] = None,
) -> List[TrialOutcome]:
    """Convenience wrapper: build a :class:`TrialRunner` and run ``specs``."""
    return TrialRunner(
        max_workers=max_workers,
        trial_timeout_s=trial_timeout_s,
        max_attempts=max_attempts,
        telemetry=telemetry,
    ).run(specs, journal=journal)
