"""The CAVENET pipeline: CA mobility -> trace -> network simulation.

This is the executable version of paper Fig. 2: the Behavioural Analyzer
(cellular automaton + lane geometry) produces a movement trace, which the
Communication Protocol Simulator (DES + PHY + MAC + routing + traffic)
replays.  The two stages stay decoupled — the trace in the middle is the
same object the ns-2 exporter serialises.

Every component choice (lane boundary, initial placement, propagation
model, routing protocol, traffic source) is resolved by *name* through
:mod:`repro.core.registry`; there is no literal dispatch here, so a
third-party component registered with ``@register(kind, name)`` runs
end to end without editing this module.  :meth:`CavenetSimulation.run`
is a thin orchestrator over overridable ``build_*`` stages — subclasses
swap a single stage (say, a custom channel) and inherit the rest.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import registry
from repro.core.config import Scenario
from repro.des.engine import Simulator
from repro.kernels import DcfBook
from repro.mac.dcf import MacStats
from repro.metrics.collector import MetricsCollector
from repro.metrics.delay import DelayStats, delay_stats
from repro.metrics.goodput import goodput_series, total_goodput_bps
from repro.metrics.overhead import ControlOverhead, control_overhead, normalized_routing_load
from repro.metrics.pdr import packet_delivery_ratio, pdr_by_flow
from repro.metrics.resilience import (
    availability,
    pdr_timeline,
    recovery_times_s,
)
from repro.mobility.ca_mobility import CaMobility
from repro.mobility.trace import MobilityTrace, TracePlayer
from repro.net.node import Node
from repro.phy.channel import CachedPositionProvider, Channel
from repro.phy.energy import EnergyMeter
from repro.phy.params import PhyParams
from repro.phy.propagation import PropagationModel
from repro.routing import make_protocol
from repro.traffic.base import TrafficSource
from repro.traffic.sink import Sink
from repro.util.errors import ConfigError
from repro.util.rng import RngStreams


@dataclasses.dataclass
class SimulationResult:
    """Everything measured in one run, with metric accessors.

    Attributes:
        scenario: the configuration that produced this result.
        collector: raw packet events.
        trace: the mobility trace the run replayed.
        sink: the receiver's sink (per-flow receptions).
        sources: the traffic sources, keyed by flow id.
        sinks: per-destination sinks, keyed by node id.
        mac_stats: per-node MAC counters.
        frames_on_air: total frames the channel carried.
        energy: per-node energy meters (ns-2 EnergyModel-style).
    """

    scenario: Scenario
    collector: MetricsCollector
    trace: MobilityTrace
    sink: Sink
    sources: Dict[int, TrafficSource]
    sinks: Dict[int, Sink]
    mac_stats: Dict[int, MacStats]
    frames_on_air: int
    energy: Dict[int, EnergyMeter]

    def total_energy_j(self) -> float:
        """Joules consumed by all radios over the run."""
        return sum(meter.consumed_j() for meter in self.energy.values())

    @property
    def channel_telemetry(self):
        """PHY/channel health counters (link-cache hit rate, deliveries,
        carrier-sense drops, simulator events) — see
        :class:`repro.metrics.collector.ChannelTelemetry`."""
        return self.collector.channel

    def pdr(self, flow_id: Optional[int] = None) -> float:
        """Packet delivery ratio of one flow (or overall)."""
        return packet_delivery_ratio(self.collector, flow_id)

    def pdr_per_sender(self) -> Dict[int, float]:
        """PDR per sender (flow ids are sender ids) — Fig. 11's bars.

        Every configured flow appears, with an explicit 0.0 when it
        never delivered (or never even originated — a source down for
        the whole traffic window must not vanish from the report).
        """
        configured = [fid for fid, _src, _dst in self.scenario.traffic_flows()]
        return pdr_by_flow(self.collector, configured)

    # -- resilience (fault-injection) accessors ------------------------------

    @property
    def fault_events(self):
        """Fault transitions recorded during the run (empty when the
        scenario declared no faults) — see
        :class:`repro.metrics.collector.FaultEvent`."""
        return self.collector.fault_events

    def pdr_timeline(self, bin_s: float = 1.0):
        """Per-window PDR ``[(window_start_s, pdr), ...]`` — the
        dip-and-rebound curve of an outage."""
        return pdr_timeline(self.collector, self.scenario.sim_time_s, bin_s)

    def availability(
        self, bin_s: float = 1.0, threshold: float = 0.5
    ) -> float:
        """Fraction of traffic-carrying windows with PDR >= threshold."""
        return availability(
            self.collector, self.scenario.sim_time_s, bin_s, threshold
        )

    def recovery_times_s(self) -> Dict[float, float]:
        """Re-convergence gap after each ``node_up`` transition."""
        return recovery_times_s(self.collector)

    def goodput_series(
        self, flow_id: Optional[int] = None, bin_s: float = 1.0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Goodput over time for one sender — one ridge of Figs. 8-10."""
        return goodput_series(
            self.collector, flow_id, self.scenario.sim_time_s, bin_s
        )

    def mean_goodput_bps(self, flow_id: Optional[int] = None) -> float:
        """Average goodput over the traffic window."""
        return total_goodput_bps(
            self.collector,
            flow_id,
            self.scenario.traffic_start_s,
            self.scenario.sim_time_s,
        )

    def delay_stats(self, flow_id: Optional[int] = None) -> DelayStats:
        """End-to-end delay summary."""
        return delay_stats(self.collector, flow_id)

    def control_overhead(self) -> ControlOverhead:
        """Routing-control transmissions."""
        return control_overhead(self.collector)

    def normalized_routing_load(self) -> float:
        """Control transmissions per delivered data packet."""
        return normalized_routing_load(self.collector)


class CavenetSimulation:
    """Build and run one scenario end to end.

    :meth:`run` chains the ``build_*`` stages below; each is a seam a
    subclass can override independently (swap the channel, inject
    pre-built nodes, wrap traffic sources) while everything else —
    including RNG stream wiring and metric collection — stays stock.
    """

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario

    # -- stage 1: Behavioural Analyzer ---------------------------------------

    def build_mobility(self) -> CaMobility:
        """Construct the CA + lane geometry for the scenario.

        The lane (``boundary`` registry) and the vehicle placement
        (``mobility`` registry) are both resolved by name; the placement
        factory receives the boundary and the dedicated ``"mobility"``
        RNG stream, so identical names draw identical randomness.
        """
        scenario = self.scenario
        streams = RngStreams(scenario.seed)
        layout, boundary = registry.resolve("boundary", scenario.boundary)(
            scenario
        )
        model = registry.resolve("mobility", scenario.initial_placement)(
            scenario, boundary, streams.stream("mobility")
        )
        return CaMobility(model, layout)

    def generate_trace(self) -> MobilityTrace:
        """Run the mobility model and emit the (warmed-up, re-based) trace."""
        scenario = self.scenario
        mobility = self.build_mobility()
        mobility.model.run(scenario.mobility_warmup_steps)
        trace = mobility.sample(scenario.sim_time_s)
        # The sample() clock continues from the warm-up; the network
        # simulation starts at 0, so re-base the trace.
        return MobilityTrace(
            times=trace.times - trace.times[0],
            positions=trace.positions,
            teleported=trace.teleported,
        )

    # -- stage 2: Communication Protocol Simulator ------------------------------

    def build_propagation(self, streams: RngStreams) -> PropagationModel:
        """Resolve the scenario's propagation model through the registry."""
        return registry.resolve("propagation", self.scenario.propagation)(
            self.scenario, streams
        )

    def build_tech(self):
        """Resolve the scenario's radio-technology profile.

        The factory comes from the ``tech`` registry and receives the
        scenario plus ``Scenario.tech_options`` as keyword arguments.
        Deterministic and stream-free, so calling it more than once per
        run (``build_nodes`` for the MACs, :meth:`run` for the energy
        meters) costs nothing and cannot perturb RNG state.
        """
        scenario = self.scenario
        factory = registry.resolve("tech", scenario.tech)
        try:
            return factory(scenario, **scenario.tech_options)
        except TypeError as exc:
            raise ConfigError(
                f"tech profile {scenario.tech!r} has bad options: {exc}"
            ) from exc

    def build_effects(self, streams: RngStreams) -> List[object]:
        """Instantiate the scenario's channel-effect stack, in order.

        Each spec in ``Scenario.effects`` resolves through the
        ``effect`` registry; the factory receives the scenario, the
        run's :class:`~repro.util.rng.RngStreams` and a per-effect
        stream-name prefix (``"effect-<index>"`` — per-frame effects
        derive per-sender streams from it).  An empty ``effects`` list
        returns immediately — no import of :mod:`repro.phy.effects`,
        no streams created, so effect-free runs stay bit-identical to
        runs predating the effect stack.
        """
        scenario = self.scenario
        if not scenario.effects:
            return []
        effects: List[object] = []
        for index, spec in enumerate(scenario.effects):
            options = dict(spec)
            kind = options.pop("kind")
            factory = registry.resolve("effect", kind)
            try:
                effect = factory(
                    scenario, streams, f"effect-{index}", **options
                )
            except TypeError as exc:
                raise ConfigError(
                    f"effect spec {index} ({kind!r}) has bad options: {exc}"
                ) from exc
            effects.append(effect)
        return effects

    def build_spatial(self):
        """Resolve the scenario's neighbor-culling index (None = dense).

        The factory comes from the ``spatial`` registry; the built-in
        ``"grid"`` entry derives its cell size from the carrier-sense
        radius (or ``Scenario.cull_radius_m``) and raises
        :class:`~repro.util.errors.ConfigError` if the cull radius does
        not cover the maximum link range.
        """
        return registry.resolve("spatial", self.scenario.spatial)(
            self.scenario
        )

    def build_channel(
        self, sim: Simulator, streams: RngStreams, trace: MobilityTrace
    ) -> Tuple[Channel, PhyParams]:
        """Wire trace playback, propagation and PHY thresholds into a channel."""
        scenario = self.scenario
        player = TracePlayer(trace)
        provider = CachedPositionProvider(
            player, sim, scenario.position_cache_dt_s
        )
        # Thresholds derived so the chosen propagation model yields the
        # scenario's TX/CS ranges; for_ranges works on the model's
        # deterministic mean/median power, so stochastic models need no
        # special-cased sigma-0 twin and consume no randomness here.
        propagation = self.build_propagation(streams)
        phy_params = PhyParams.for_ranges(
            propagation, scenario.tx_range_m, scenario.cs_range_m
        )
        channel = Channel(
            sim,
            propagation,
            provider.positions,
            spatial=self.build_spatial(),
            kernels=scenario.kernels,
            effects=self.build_effects(streams),
        )
        return channel, phy_params

    def build_nodes(
        self,
        sim: Simulator,
        channel: Channel,
        phy_params: PhyParams,
        metrics: MetricsCollector,
        streams: RngStreams,
    ) -> List[Node]:
        """Create every node with its MAC, radio and routing protocol.

        Each node gets its own ``"mac-<id>"`` and ``"routing-<id>"``
        streams; the protocol comes from the ``routing`` registry via
        :func:`repro.routing.make_protocol`.  All MACs share one
        :class:`~repro.kernels.dcf_book.DcfBook` (struct-of-arrays
        contention state) on the scenario's kernel backend.
        """
        scenario = self.scenario
        book = DcfBook(kernels=scenario.kernels)
        tech = self.build_tech()
        nodes: List[Node] = []
        for node_id in range(scenario.num_nodes):
            node = Node(
                sim,
                node_id,
                channel,
                phy_params,
                scenario.mac_params,
                metrics,
                rng=streams.stream(f"mac-{node_id}"),
                dcf_book=book,
                tech=tech,
            )
            protocol = make_protocol(
                scenario.protocol,
                node,
                streams.stream(f"routing-{node_id}"),
                **scenario.protocol_options,
            )
            node.set_routing(protocol)
            nodes.append(node)
        return nodes

    def build_traffic(
        self, nodes: List[Node], streams: RngStreams
    ) -> Tuple[Dict[int, TrafficSource], Dict[int, Sink]]:
        """Instantiate sinks and (started) traffic sources for every flow.

        The source factory is the scenario's ``traffic`` registry entry;
        it receives the per-flow RNG stream and the scenario, with
        ``Scenario.traffic_options`` forwarded as keyword overrides.  A
        factory may carry an ``rng_stream_prefix`` attribute naming its
        per-flow streams (the built-in CBR keeps its historical
        ``"cbr-<flow>"`` name so default runs stay bit-identical);
        everything else gets ``"traffic-<flow>"``.
        """
        scenario = self.scenario
        factory = registry.resolve("traffic", scenario.traffic)
        stream_prefix = getattr(factory, "rng_stream_prefix", "traffic")
        sinks: Dict[int, Sink] = {
            scenario.receiver: Sink(nodes[scenario.receiver])
        }
        sources: Dict[int, TrafficSource] = {}
        for flow_id, src, dst in scenario.traffic_flows():
            if dst not in sinks:
                sinks[dst] = Sink(nodes[dst])
            source = factory(
                nodes[src],
                dst,
                scenario=scenario,
                flow_id=flow_id,
                rng=streams.stream(f"{stream_prefix}-{flow_id}"),
                **scenario.traffic_options,
            )
            source.start()
            sources[flow_id] = source
        return sources, sinks

    def build_faults(
        self,
        sim: Simulator,
        nodes: List[Node],
        channel: Channel,
        metrics: MetricsCollector,
        streams: RngStreams,
    ) -> List[object]:
        """Instantiate and arm the scenario's fault models.

        Each spec in ``Scenario.faults`` resolves through the ``fault``
        registry; the factory receives a
        :class:`~repro.faults.base.FaultContext` plus the spec's options
        and its own ``"fault-<index>"`` RNG stream.  An empty ``faults``
        list returns immediately — no import of :mod:`repro.faults`, no
        streams created, so fault-free runs stay bit-identical to runs
        predating fault injection.
        """
        scenario = self.scenario
        if not scenario.faults:
            return []
        from repro.faults.base import FaultContext

        node_map = {node.node_id: node for node in nodes}
        models: List[object] = []
        for index, spec in enumerate(scenario.faults):
            options = dict(spec)
            kind = options.pop("kind")
            factory = registry.resolve("fault", kind)
            context = FaultContext(
                sim=sim,
                scenario=scenario,
                nodes=node_map,
                channel=channel,
                metrics=metrics,
                rng=streams.stream(f"fault-{index}"),
            )
            try:
                model = factory(context, **options)
            except TypeError as exc:
                raise ConfigError(
                    f"fault spec {index} ({kind!r}) has bad options: {exc}"
                ) from exc
            model.arm()
            models.append(model)
        return models

    def run(self, trace: Optional[MobilityTrace] = None) -> SimulationResult:
        """Execute the scenario and return its measurements.

        A pre-built ``trace`` (e.g. parsed from an ns-2 movement file)
        bypasses the Behavioural Analyzer stage, exercising the same
        decoupling the paper's two-block architecture is designed around.
        """
        scenario = self.scenario
        streams = RngStreams(scenario.seed)
        if trace is None:
            trace = self.generate_trace()
        if trace.num_nodes != scenario.num_nodes:
            raise ConfigError(
                f"trace has {trace.num_nodes} nodes, scenario expects "
                f"{scenario.num_nodes}"
            )

        sim = Simulator()
        channel, phy_params = self.build_channel(sim, streams, trace)
        metrics = MetricsCollector(sim)

        nodes = self.build_nodes(sim, channel, phy_params, metrics, streams)
        # Energy draw comes from the tech profile (per-technology
        # figures); the default profile's params equal EnergyParams(),
        # so default runs meter identically to before.
        energy_params = self.build_tech().energy
        energy = {
            node.node_id: EnergyMeter(sim, node.radio, energy_params)
            for node in nodes
        }
        for node in nodes:
            node.routing.start()

        sources, sinks = self.build_traffic(nodes, streams)
        self.build_faults(sim, nodes, channel, metrics, streams)

        sim.run(until=scenario.sim_time_s)
        metrics.record_channel(channel)
        metrics.record_energy(energy)

        return SimulationResult(
            scenario=scenario,
            collector=metrics,
            trace=trace,
            sink=sinks[scenario.receiver],
            sources=sources,
            sinks=sinks,
            mac_stats={node.node_id: node.mac.stats for node in nodes},
            frames_on_air=channel.frames_transmitted,
            energy=energy,
        )
