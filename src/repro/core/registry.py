"""Named-component registries: the one place a component name resolves.

The paper's two-block architecture (Fig. 2) is explicitly about swappable
parts — a mobility model feeding an exchangeable protocol stack — and the
related work stresses that VANET conclusions hinge on varying the
mobility/propagation/protocol combination.  This module is the seam that
makes every such choice pluggable: a generic registry with one namespace
per component *kind*, a :func:`register` decorator, and case-insensitive
name resolution that fails with the live list of known choices.

Twelve kinds exist (:data:`KINDS`):

``propagation``
    ``factory(scenario, streams) -> PropagationModel`` (see
    :mod:`repro.phy.propagation`).
``routing``
    The protocol class itself, ``cls(node, rng, **options)`` (see
    :mod:`repro.routing`).
``mobility``
    Initial-placement builders, ``factory(scenario, boundary, rng) ->
    NagelSchreckenberg`` (see :mod:`repro.mobility.builders`).
``boundary``
    Lane-topology builders, ``factory(scenario) -> (RoadLayout,
    Boundary)`` (see :mod:`repro.mobility.builders`).
``traffic``
    Source factories, ``factory(node, dst, *, scenario, flow_id, rng) ->
    TrafficSource`` (see :mod:`repro.traffic`).
``fault``
    Fault-model factories, ``factory(context, **options) -> FaultModel``
    (see :mod:`repro.faults`), declared per scenario via
    ``Scenario.faults``.
``spatial``
    Neighbor-culling index factories, ``factory(scenario) -> index or
    None`` (see :mod:`repro.phy.spatial`); ``None`` keeps the exact
    dense link cache.
``kernels``
    Kernel-backend factories, ``factory(scenario=None) ->
    KernelBackend`` (see :mod:`repro.kernels`) — where the hot inner
    loops (CA stepping, DCF bookkeeping, link-cache rows) execute;
    every backend is bit-identical, only speed differs.
``backend``
    Execution-backend factories, ``factory(runner) ->
    ExecutionBackend`` (see :mod:`repro.core.backend`) — where a
    campaign's *trials* execute (in-process serial, a local process
    pool, or the lease/heartbeat-supervised pool); every backend
    produces bit-identical campaign results, only the failure-handling
    machinery differs.
``tech``
    Radio-technology profiles, ``factory(scenario, **options) ->
    TechProfile`` (see :mod:`repro.phy.tech`) — frequency, bandwidth,
    noise figure, per-MCS SNR->rate table, tx-power range and energy
    draw; ``Scenario.tech_options`` is forwarded as the keyword
    arguments.
``effect``
    Channel-effect factories, ``factory(scenario, streams, name,
    **options) -> ChannelEffect`` (see :mod:`repro.phy.effects`),
    declared per scenario via ``Scenario.effects`` and applied as an
    ordered stack to every link's receive power.
``queue``
    Durable job-queue factories, ``factory(root, **options) ->
    DirQueue`` (see :mod:`repro.core.distq`) — the shared-directory
    coordination substrate the ``dir-queue`` execution backend and
    ``repro serve``/``repro worker`` schedule trials through (atomic
    claims, fencing tokens, quarantine).

Built-in implementations register themselves at import time of their home
module; the registry imports those modules lazily on first lookup, so
``import repro.core.registry`` alone stays dependency-free and leaf
modules can import the decorator without cycles.  Third-party code extends
any namespace with no edits to ``repro.*``::

    from repro.core.registry import register

    @register("propagation", "tunnel")
    def make_tunnel(scenario, streams):
        return TunnelPropagation(scenario.shadowing_exponent)

After that, ``Scenario(propagation="tunnel")`` validates and runs end to
end — :class:`~repro.core.config.Scenario` derives its legal names from
these registries rather than hand-kept tuples.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, Iterator, Mapping, Tuple

from repro.util.errors import ConfigError

#: The component namespaces, in the order `repro components` lists them.
KINDS: Tuple[str, ...] = (
    "propagation",
    "routing",
    "mobility",
    "traffic",
    "boundary",
    "fault",
    "spatial",
    "kernels",
    "backend",
    "tech",
    "effect",
    "queue",
)

#: What a name in each namespace denotes — used in error messages so an
#: unknown name reads as "unknown routing protocol 'OSPF'", not as
#: registry jargon.
_NOUNS: Dict[str, str] = {
    "propagation": "propagation model",
    "routing": "routing protocol",
    "mobility": "initial placement",
    "traffic": "traffic model",
    "boundary": "boundary",
    "fault": "fault model",
    "spatial": "spatial index",
    "kernels": "kernel backend",
    "backend": "execution backend",
    "tech": "tech profile",
    "effect": "channel effect",
    "queue": "job queue",
}

#: Modules whose import registers the built-in entries of each kind.
#: Imported lazily on first lookup (never on registration), which keeps
#: this module import-free and breaks the cycle leaf modules would
#: otherwise create by importing the decorator.
_BUILTIN_MODULES: Dict[str, Tuple[str, ...]] = {
    "propagation": ("repro.phy.propagation",),
    "routing": ("repro.routing",),
    "mobility": ("repro.mobility.builders",),
    "boundary": ("repro.mobility.builders",),
    "traffic": ("repro.traffic",),
    "fault": ("repro.faults",),
    "spatial": ("repro.phy.spatial",),
    "kernels": ("repro.kernels",),
    "backend": ("repro.core.backend", "repro.core.distq"),
    "tech": ("repro.phy.tech",),
    "effect": ("repro.phy.effects",),
    "queue": ("repro.core.distq",),
}


class Registry:
    """One namespace of named component factories.

    Lookup is case-insensitive; the *canonical* spelling is whatever the
    component registered under, and :meth:`normalize` maps any accepted
    spelling onto it (so fingerprints and labels cannot diverge between
    ``"aodv"`` and ``"AODV"``).
    """

    def __init__(self, kind: str, noun: str) -> None:
        self.kind = kind
        self.noun = noun
        self._entries: Dict[str, Callable[..., Any]] = {}
        self._canonical: Dict[str, str] = {}  # casefolded -> canonical

    # -- registration -------------------------------------------------------

    def register(
        self, name: str, factory: Callable[..., Any], overwrite: bool = False
    ) -> None:
        """Add ``factory`` under ``name``.

        Duplicate names (case-insensitively) raise :class:`ConfigError`
        unless ``overwrite=True`` — silent shadowing of a built-in would
        make two runs of the "same" scenario incomparable.
        """
        key = str(name).casefold()
        if not key:
            raise ConfigError(f"{self.noun} name must be non-empty")
        if key in self._canonical and not overwrite:
            raise ConfigError(
                f"{self.noun} {name!r} is already registered (as "
                f"{self._canonical[key]!r}); pass overwrite=True to replace"
            )
        previous = self._canonical.get(key)
        if previous is not None and previous != name:
            del self._entries[previous]
        self._canonical[key] = str(name)
        self._entries[str(name)] = factory

    def unregister(self, name: str) -> None:
        """Remove an entry (tests and interactive experimentation)."""
        key = str(name).casefold()
        canonical = self._canonical.pop(key, None)
        if canonical is None:
            raise ConfigError(f"unknown {self.noun} {name!r}; nothing removed")
        del self._entries[canonical]

    # -- lookup -------------------------------------------------------------

    def normalize(self, name: str) -> str:
        """Canonical spelling of ``name``; ConfigError if unknown."""
        _ensure_builtins(self.kind)
        key = str(name).casefold()
        if key not in self._canonical:
            raise ConfigError(
                f"unknown {self.noun} {name!r}; known: {list(self.names())}"
            )
        return self._canonical[key]

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name`` (case-insensitive)."""
        return self._entries[self.normalize(name)]

    def names(self) -> Tuple[str, ...]:
        """Canonical names, sorted — the live list of legal choices."""
        _ensure_builtins(self.kind)
        return tuple(sorted(self._entries))

    def describe(self) -> Dict[str, str]:
        """``{name: "module:qualname"}`` for every entry (CLI listing)."""
        _ensure_builtins(self.kind)
        out = {}
        for name in self.names():
            factory = self._entries[name]
            module = getattr(factory, "__module__", "?")
            qualname = getattr(factory, "__qualname__", repr(factory))
            out[name] = f"{module}:{qualname}"
        return out


_REGISTRIES: Dict[str, Registry] = {
    kind: Registry(kind, _NOUNS[kind]) for kind in KINDS
}
_LOADED: set = set()
_LOADING: set = set()


def _ensure_builtins(kind: str) -> None:
    """Import the modules that register ``kind``'s built-ins (once).

    Reentrancy-safe: a module registering itself mid-import is not
    re-imported, so ``repro.routing`` may both define entries and be the
    builtin module for its own kind.
    """
    for module in _BUILTIN_MODULES.get(kind, ()):
        if module in _LOADED or module in _LOADING:
            continue
        _LOADING.add(module)
        try:
            importlib.import_module(module)
            _LOADED.add(module)
        finally:
            _LOADING.discard(module)


def registry(kind: str) -> Registry:
    """The :class:`Registry` for ``kind``; ConfigError on an unknown kind."""
    try:
        return _REGISTRIES[kind]
    except KeyError:
        raise ConfigError(
            f"unknown component kind {kind!r}; known: {list(KINDS)}"
        ) from None


def register(
    kind: str, name: str, overwrite: bool = False
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: register the decorated factory/class under ``name``.

    >>> @register("routing", "NULL", overwrite=True)
    ... class NullRouting:
    ...     def __init__(self, node, rng): pass
    >>> resolve("routing", "null") is NullRouting
    True
    >>> registry("routing").unregister("NULL")
    """
    reg = registry(kind)

    def decorate(factory: Callable[..., Any]) -> Callable[..., Any]:
        reg.register(name, factory, overwrite=overwrite)
        return factory

    return decorate


def resolve(kind: str, name: str) -> Callable[..., Any]:
    """The factory for ``name`` in ``kind``'s namespace.

    This is the single dispatch point every component choice goes through:
    an unknown name raises :class:`ConfigError` here — and only here —
    with the live list of registered choices.
    """
    return registry(kind).get(name)


def known(kind: str) -> Tuple[str, ...]:
    """Sorted canonical names registered under ``kind``."""
    return registry(kind).names()


def normalize(kind: str, name: str) -> str:
    """Canonical spelling of ``name`` within ``kind``."""
    return registry(kind).normalize(name)


def describe(kind: str) -> Dict[str, str]:
    """``{name: implementation}`` for the CLI's ``components`` listing."""
    return registry(kind).describe()


class RegistryView(Mapping):
    """A read-only dict-like alias over one namespace.

    Exists so legacy surfaces (``repro.routing.PROTOCOLS``) keep their
    mapping semantics while the registry stays the single source of truth:
    entries registered later — including third-party ones — appear in the
    view immediately.
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind

    def __getitem__(self, name: str) -> Callable[..., Any]:
        try:
            return resolve(self._kind, name)
        except ConfigError:
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(known(self._kind))

    def __len__(self) -> int:
        return len(known(self._kind))

    def __repr__(self) -> str:
        return f"RegistryView({self._kind!r}, {list(self)!r})"
