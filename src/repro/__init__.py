"""CAVENET reproduction: a VANET simulation toolkit.

This package reproduces the system described in *"Improvement and Performance
Evaluation of CAVENET: A Network Simulation Tool for Vehicular Networks"*
(Barolli et al., ICDCS Workshops 2010).  It provides the two blocks of the
CAVENET architecture:

* the **Behavioural Analyzer** — a Nagel-Schreckenberg cellular-automaton
  mobility model with lane geometry, trace generation, and statistical
  analysis tools (:mod:`repro.ca`, :mod:`repro.mobility`,
  :mod:`repro.geometry`, :mod:`repro.tracegen`, :mod:`repro.analysis`); and
* the **Communication Protocol Simulator** — a discrete-event wireless
  network simulator with an IEEE 802.11 DCF MAC, two-ray-ground propagation
  and the AODV, OLSR and DYMO routing protocols (:mod:`repro.des`,
  :mod:`repro.phy`, :mod:`repro.mac`, :mod:`repro.net`, :mod:`repro.routing`,
  :mod:`repro.traffic`, :mod:`repro.metrics`).

The high-level entry points live in :mod:`repro.core`:

>>> from repro.core import Scenario, CavenetSimulation
>>> scenario = Scenario(num_nodes=10, road_length_m=1000.0,
...                     sim_time_s=20.0, senders=(1, 2),
...                     traffic_start_s=5.0, traffic_stop_s=18.0)
>>> result = CavenetSimulation(scenario).run()
>>> 0.0 <= result.pdr(1) <= 1.0
True
"""

__version__ = "1.0.0"

__all__ = ["Scenario", "CavenetSimulation", "__version__"]

_LAZY_EXPORTS = {
    "Scenario": ("repro.core.config", "Scenario"),
    "CavenetSimulation": ("repro.core.simulation", "CavenetSimulation"),
}


def __getattr__(name):
    """Lazily expose the high-level API (PEP 562).

    Importing :mod:`repro` stays cheap for consumers that only need one
    subsystem (e.g. just the CA model); the facade classes pull in the whole
    network stack only when actually referenced.
    """
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attribute = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
