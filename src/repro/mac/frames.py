"""MAC frames: what actually travels over the radio."""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.net.packet import Packet


class FrameType(enum.Enum):
    """802.11 frame types used by the DCF."""

    DATA = "data"
    ACK = "ack"
    RTS = "rts"
    CTS = "cts"


#: MAC overhead in bytes per frame type (header + FCS, 802.11-1999 figures).
FRAME_OVERHEAD_BYTES = {
    FrameType.DATA: 28,
    FrameType.ACK: 14,
    FrameType.RTS: 20,
    FrameType.CTS: 14,
}


@dataclasses.dataclass(frozen=True)
class Frame:
    """One frame on the air.

    Attributes:
        frame_type: DATA / ACK / RTS / CTS.
        tx_addr: transmitter MAC address (node id).
        rx_addr: receiver MAC address, or BROADCAST.
        size_bytes: total size on air including MAC overhead.
        duration_s: the 802.11 Duration field — how long, after this frame
            ends, the medium remains reserved for the ongoing exchange.
            Third-party stations load this value into their NAV.
        packet: the network-layer payload (DATA frames only).
        seq: per-transmitter sequence number for duplicate detection
            (retransmissions reuse the number).
    """

    frame_type: FrameType
    tx_addr: int
    rx_addr: int
    size_bytes: int
    duration_s: float = 0.0
    packet: Optional[Packet] = None
    seq: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be > 0, got {self.size_bytes}")
        if self.duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {self.duration_s}")
        if self.frame_type is FrameType.DATA and self.packet is None:
            raise ValueError("DATA frames must carry a packet")
