"""802.11 DCF parameters (DSSS PHY defaults, as in ns-2 and Table I)."""

from __future__ import annotations

import dataclasses

from repro.mac.frames import FRAME_OVERHEAD_BYTES, FrameType


@dataclasses.dataclass(frozen=True)
class Mac80211Params:
    """Timing and retry configuration of the DCF.

    Defaults are the 802.11 DSSS values with Table I's rates: 2 Mbps data
    and 1 Mbps basic (control) rate, no RTS/CTS.

    Attributes:
        data_rate_bps: payload transmission rate.
        basic_rate_bps: rate for ACK/RTS/CTS and broadcast frames.
        slot_s: slot time.
        sifs_s: short interframe space.
        difs_s: DCF interframe space (= SIFS + 2 slots).
        plcp_s: PLCP preamble+header time, spent per frame at 1 Mbps.
        cw_min: initial contention window (slots - 1).
        cw_max: maximum contention window.
        short_retry_limit: retries for frames sent without RTS.
        long_retry_limit: retries for RTS-protected frames.
        rts_threshold_bytes: packets at least this large use RTS/CTS;
            ``None`` disables RTS/CTS entirely (Table I's setting).
    """

    data_rate_bps: float = 2e6
    basic_rate_bps: float = 1e6
    slot_s: float = 20e-6
    sifs_s: float = 10e-6
    difs_s: float = 50e-6
    plcp_s: float = 192e-6
    cw_min: int = 31
    cw_max: int = 1023
    short_retry_limit: int = 7
    long_retry_limit: int = 4
    rts_threshold_bytes: "int | None" = None

    def __post_init__(self) -> None:
        if self.data_rate_bps <= 0 or self.basic_rate_bps <= 0:
            raise ValueError("rates must be > 0")
        if min(self.slot_s, self.sifs_s, self.difs_s, self.plcp_s) <= 0:
            raise ValueError("timing parameters must be > 0")
        if not 0 < self.cw_min <= self.cw_max:
            raise ValueError(
                f"need 0 < cw_min <= cw_max, got {self.cw_min}, {self.cw_max}"
            )
        if self.short_retry_limit < 1 or self.long_retry_limit < 1:
            raise ValueError("retry limits must be >= 1")

    def tx_time(self, size_bytes: int, frame_type: FrameType) -> float:
        """Air time of a frame: PLCP plus bits at the appropriate rate.

        DATA bits go at ``data_rate_bps``; control frames at the basic rate.
        """
        rate = (
            self.data_rate_bps
            if frame_type is FrameType.DATA
            else self.basic_rate_bps
        )
        return self.plcp_s + size_bytes * 8.0 / rate

    def frame_size(self, frame_type: FrameType, payload_bytes: int = 0) -> int:
        """On-air size: payload plus the MAC overhead for the type."""
        return FRAME_OVERHEAD_BYTES[frame_type] + payload_bytes

    def ack_tx_time(self) -> float:
        """Air time of an ACK frame."""
        return self.tx_time(self.frame_size(FrameType.ACK), FrameType.ACK)

    def cts_tx_time(self) -> float:
        """Air time of a CTS frame."""
        return self.tx_time(self.frame_size(FrameType.CTS), FrameType.CTS)

    def ack_timeout(self) -> float:
        """How long a transmitter waits for an ACK before retrying."""
        return self.sifs_s + self.ack_tx_time() + 2 * self.slot_s

    def cts_timeout(self) -> float:
        """How long an RTS sender waits for the CTS."""
        return self.sifs_s + self.cts_tx_time() + 2 * self.slot_s

    def uses_rts(self, payload_bytes: int) -> bool:
        """Does a packet of this size go through the RTS/CTS exchange?"""
        return (
            self.rts_threshold_bytes is not None
            and payload_bytes >= self.rts_threshold_bytes
        )
