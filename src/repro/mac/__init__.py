"""IEEE 802.11 DCF medium access control (Table I's MAC protocol)."""

from repro.mac.frames import Frame, FrameType
from repro.mac.params import Mac80211Params
from repro.mac.dcf import Mac80211

__all__ = ["Frame", "FrameType", "Mac80211Params", "Mac80211"]
