"""The 802.11 Distributed Coordination Function.

Implements the CSMA/CA access procedure the paper's Table I configures:
physical + virtual (NAV) carrier sense, DIFS deferral, binary-exponential
backoff with freeze-and-resume slot counting, positive ACKs with
retransmission for unicast frames, and the optional RTS/CTS exchange
(disabled by default, as in Table I).

Simplifications relative to the full standard, none of which affect the
contention behaviour the evaluation depends on: no EIFS, no fragmentation,
and the backoff counter is realised as a single timer that freezes when the
medium goes busy instead of per-slot events.
"""

from __future__ import annotations

import collections
from typing import Callable, Deque, Optional, Tuple

import numpy as np

from repro.des.engine import Simulator
from repro.des.event import Event
from repro.kernels.dcf_book import DcfBook
from repro.mac.frames import Frame, FrameType
from repro.mac.params import Mac80211Params
from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.phy.tech import TechProfile


class MacStats:
    """Per-MAC counters surfaced to the metrics layer."""

    def __init__(self) -> None:
        self.data_tx = 0
        self.ack_tx = 0
        self.rts_tx = 0
        self.cts_tx = 0
        self.retransmissions = 0
        self.retry_drops = 0
        self.duplicates_suppressed = 0

    def frames_tx(self) -> int:
        """All frames transmitted by this MAC."""
        return self.data_tx + self.ack_tx + self.rts_tx + self.cts_tx


class _TxContext:
    """The unicast/broadcast exchange currently being served."""

    __slots__ = ("packet", "next_hop", "retries", "use_rts", "phase", "seq")

    def __init__(
        self, packet: Packet, next_hop: int, use_rts: bool, seq: int
    ) -> None:
        self.packet = packet
        self.next_hop = next_hop
        self.retries = 0
        self.use_rts = use_rts
        self.phase = "rts" if use_rts else "data"
        self.seq = seq


class Mac80211:
    """One node's DCF entity, between the network layer and its radio.

    Contention state (CW, pending backoff slots, NAV horizon) lives in a
    :class:`~repro.kernels.dcf_book.DcfBook` — a struct-of-arrays ledger
    shared by every MAC of a simulation when the caller passes one in
    (``build_nodes`` does), or private to this MAC otherwise.  Scalar
    transitions stay inline Python (the DES delivers them one event at a
    time); population-wide sweeps go through the book's batched kernels.

    Rates come from a :class:`~repro.phy.tech.TechProfile` (``tech=``;
    defaults to the non-adaptive profile mirroring ``params``, which is
    bit-identical to the fixed-rate code it replaced).  With an
    adaptive profile, each unicast DATA frame is sent at the MCS the
    receiver's cached mean SNR selects — a deterministic table lookup,
    no RNG — and the chosen rate is recorded in the book's
    ``last_rate_bps`` column.  Control frames (RTS/CTS/ACK) always use
    the profile's basic rate; response timeouts stay on ``params``
    (legacy basic rate), which is conservative — never shorter than
    the actual response airtime.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: "Radio",
        params: Mac80211Params,
        rng: Optional[np.random.Generator] = None,
        queue_capacity: int = 50,
        book: Optional[DcfBook] = None,
        tech: Optional[TechProfile] = None,
    ) -> None:
        self._sim = sim
        self._radio = radio
        self._params = params
        self._tech = (
            tech if tech is not None else TechProfile.from_mac_params(params)
        )
        self._noise_floor_w = self._tech.noise_floor_w
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._queue = DropTailQueue(queue_capacity)
        self.stats = MacStats()

        #: Crash state: a down MAC accepts nothing, reacts to nothing.
        self._down = False
        self._current: Optional[_TxContext] = None
        self._outgoing: Optional[Frame] = None
        self._book = book if book is not None else DcfBook()
        self._slot = self._book.register(params.cw_min)
        self._timer: Optional[Event] = None
        self._timer_kind = ""
        self._nav_wakeup: Optional[Event] = None
        self._response_timer: Optional[Event] = None
        self._seq_counter = 0
        self._dup_cache: Deque[Tuple[int, int]] = collections.deque(maxlen=128)

        self._on_receive: Callable[[Packet, int], None] = lambda p, h: None
        self._on_failure: Callable[[Packet, int], None] = lambda p, h: None
        radio.attach_mac(self)

    # -- wiring ------------------------------------------------------------

    def attach_upper(
        self,
        on_receive: Callable[[Packet, int], None],
        on_failure: Callable[[Packet, int], None],
    ) -> None:
        """Connect the network layer.

        ``on_receive(packet, prev_hop)`` fires for every decoded DATA frame
        addressed to this node or to broadcast; ``on_failure(packet,
        next_hop)`` fires when a unicast frame exhausts its retry budget
        (the routing layer's link-breakage signal).
        """
        self._on_receive = on_receive
        self._on_failure = on_failure

    @property
    def address(self) -> int:
        """The MAC address (= node id)."""
        return self._radio.node_id

    @property
    def queue(self) -> DropTailQueue:
        """The interface queue."""
        return self._queue

    @property
    def book(self) -> DcfBook:
        """The struct-of-arrays ledger holding this MAC's contention state."""
        return self._book

    @property
    def book_slot(self) -> int:
        """This MAC's index into :attr:`book`'s arrays."""
        return self._slot

    # -- network-layer entry points -----------------------------------------

    def enqueue(
        self, packet: Packet, next_hop: int, priority: bool = False
    ) -> bool:
        """Queue a packet for transmission to ``next_hop`` (or BROADCAST).

        ``priority`` packets (routing control, per ns-2's PriQueue) go to
        the head of the interface queue.  Returns False when the queue
        dropped the packet.
        """
        if self._down:
            return False
        accepted = self._queue.enqueue(packet, next_hop, priority)
        if accepted:
            self._serve()
        return accepted

    def flush_next_hop(self, next_hop: int) -> int:
        """Drop queued packets bound for a hop routing declared dead."""
        return self._queue.remove_for_next_hop(next_hop)

    # -- crash / recovery (fault injection) ----------------------------------

    def fail(self):
        """Crash the MAC: cancel timers, wipe state, flush the queue.

        Returns the flushed ``(packet, next_hop)`` pairs — including the
        exchange in service — so the owning node can record them as
        drops.  Scheduled-but-untracked events (SIFS responses, post-CTS
        data) are gated by ``_down`` instead of cancelled; they fire as
        no-ops.  The frame sequence counter survives so post-recovery
        frames cannot collide with pre-crash entries in neighbours'
        duplicate caches.
        """
        self._down = True
        flushed = []
        if self._current is not None:
            flushed.append((self._current.packet, self._current.next_hop))
            self._current = None
        self._outgoing = None
        for attr in ("_timer", "_response_timer", "_nav_wakeup"):
            event = getattr(self, attr)
            if event is not None:
                event.cancel()
                setattr(self, attr, None)
        self._timer_kind = ""
        book, i = self._book, self._slot
        book.cw[i] = self._params.cw_min
        book.backoff_slots[i] = -1
        book.need_backoff[i] = False
        book.nav_until[i] = 0.0
        self._dup_cache.clear()
        while True:
            head = self._queue.dequeue()
            if head is None:
                break
            flushed.append(head)
        return flushed

    def recover(self) -> None:
        """Bring a crashed MAC back up (state was wiped at crash time)."""
        self._down = False

    # -- serving the queue ---------------------------------------------------

    def _serve(self) -> None:
        if self._current is not None:
            return
        head = self._queue.dequeue()
        if head is None:
            return
        packet, next_hop = head
        use_rts = next_hop != BROADCAST and self._params.uses_rts(
            packet.size_bytes
        )
        self._seq_counter += 1
        self._current = _TxContext(packet, next_hop, use_rts, self._seq_counter)
        self._begin_access()

    def _begin_access(self) -> None:
        if self._current is None:
            return
        if self._timer is not None or self._response_timer is not None:
            return
        if self._outgoing is not None:
            return  # mid-transmission; on_tx_done resumes
        book, i = self._book, self._slot
        if not self._medium_free():
            book.need_backoff[i] = True
            return
        if book.need_backoff[i] and book.backoff_slots[i] < 0:
            book.backoff_slots[i] = int(
                self._rng.integers(0, int(book.cw[i]) + 1)
            )
        self._timer_kind = "difs"
        self._timer = self._sim.schedule(self._params.difs_s, self._difs_done)

    def _difs_done(self) -> None:
        self._timer = None
        if not self._medium_free():
            return
        book, i = self._book, self._slot
        slots = int(book.backoff_slots[i])
        if slots > 0:
            self._timer_kind = "backoff"
            book.backoff_started[i] = self._sim.now
            self._timer = self._sim.schedule(
                slots * self._params.slot_s, self._backoff_done
            )
        else:
            book.backoff_slots[i] = -1
            book.need_backoff[i] = False
            self._transmit_current()

    def _backoff_done(self) -> None:
        self._timer = None
        self._book.backoff_slots[self._slot] = -1
        self._book.need_backoff[self._slot] = False
        self._transmit_current()

    def _medium_free(self) -> bool:
        return not self._radio.medium_busy() and (
            self._sim.now >= float(self._book.nav_until[self._slot])
        )

    # -- radio callbacks ------------------------------------------------------

    def on_medium_busy(self) -> None:
        """Physical carrier went busy: freeze any pending access timers."""
        if self._down:
            return
        self._book.need_backoff[self._slot] = True
        if self._timer is not None:
            if self._timer_kind == "backoff":
                self._book.consume_backoff(
                    self._slot, self._sim.now, self._params.slot_s
                )
            self._timer.cancel()
            self._timer = None

    def on_medium_idle(self) -> None:
        """Physical carrier went idle: resume the access procedure."""
        if self._down:
            return
        self._begin_access()

    def on_tx_done(self) -> None:
        """Our own frame left the air; arm response timers if needed."""
        if self._down:
            return
        frame = self._outgoing
        self._outgoing = None
        if frame is None:
            return
        ctx = self._current
        if ctx is None:
            return
        if frame.frame_type is FrameType.DATA and frame.seq == ctx.seq:
            if ctx.next_hop == BROADCAST:
                self._complete()
            else:
                self._response_timer = self._sim.schedule(
                    self._params.ack_timeout(), self._response_timeout
                )
        elif frame.frame_type is FrameType.RTS:
            self._response_timer = self._sim.schedule(
                self._params.cts_timeout(), self._response_timeout
            )

    def on_frame_received(self, frame: Frame, rx_power_w: float) -> None:
        """A frame decoded successfully at our radio."""
        if self._down:
            return
        me = self.address
        if frame.rx_addr == BROADCAST:
            if frame.frame_type is FrameType.DATA:
                self._on_receive(frame.packet, frame.tx_addr)
            return
        if frame.rx_addr != me:
            # Virtual carrier sense: honour the Duration field.
            self._update_nav(self._sim.now + frame.duration_s)
            return
        if frame.frame_type is FrameType.DATA:
            self._sim.schedule(
                self._params.sifs_s, self._send_response, FrameType.ACK,
                frame.tx_addr,
            )
            key = (frame.tx_addr, frame.seq)
            if key in self._dup_cache:
                self.stats.duplicates_suppressed += 1
                return
            self._dup_cache.append(key)
            self._on_receive(frame.packet, frame.tx_addr)
        elif frame.frame_type is FrameType.ACK:
            self._on_response(FrameType.ACK)
        elif frame.frame_type is FrameType.RTS:
            if self._sim.now >= float(self._book.nav_until[self._slot]):
                self._sim.schedule(
                    self._params.sifs_s, self._send_response, FrameType.CTS,
                    frame.tx_addr,
                )
        elif frame.frame_type is FrameType.CTS:
            self._on_response(FrameType.CTS)

    # -- transmission ---------------------------------------------------------

    def _rate_for(self, next_hop: int) -> float:
        """Data rate (bps) for the next DATA frame to ``next_hop``.

        Non-adaptive profiles (the default) short-circuit to their
        single MCS without ever computing an SNR — zero extra work on
        the bit-identity path.  Adaptive profiles send broadcast at the
        lowest (most robust) MCS and unicast at the rate the receiver's
        cached mean SNR selects.
        """
        tech = self._tech
        if not tech.adaptive or next_hop == BROADCAST:
            return tech.mcs[0][1]
        snr = self._radio.link_snr_db(next_hop, self._noise_floor_w)
        return tech.rate_for_snr_db(snr)

    def _transmit_current(self) -> None:
        ctx = self._current
        if ctx is None or not self._medium_free():
            return
        if ctx.use_rts and ctx.phase == "rts":
            self._transmit_rts(ctx)
        else:
            self._transmit_data(ctx)

    def _transmit_data(self, ctx: _TxContext) -> None:
        size = self._params.frame_size(FrameType.DATA, ctx.packet.size_bytes)
        duration = (
            0.0
            if ctx.next_hop == BROADCAST
            else self._params.sifs_s + self._params.ack_tx_time()
        )
        frame = Frame(
            frame_type=FrameType.DATA,
            tx_addr=self.address,
            rx_addr=ctx.next_hop,
            size_bytes=size,
            duration_s=duration,
            packet=ctx.packet,
            seq=ctx.seq,
        )
        self._outgoing = frame
        self.stats.data_tx += 1
        rate = self._rate_for(ctx.next_hop)
        self._book.last_rate_bps[self._slot] = rate
        self._radio.transmit(frame, self._tech.frame_airtime(size, rate))

    def _transmit_rts(self, ctx: _TxContext) -> None:
        size = self._params.frame_size(FrameType.RTS)
        data_size = self._params.frame_size(
            FrameType.DATA, ctx.packet.size_bytes
        )
        # Reserve through CTS + DATA + ACK (the DATA leg at the rate the
        # link's SNR selects, so the NAV tracks rate adaptation).
        duration = (
            3 * self._params.sifs_s
            + self._params.cts_tx_time()
            + self._tech.frame_airtime(data_size, self._rate_for(ctx.next_hop))
            + self._params.ack_tx_time()
        )
        frame = Frame(
            frame_type=FrameType.RTS,
            tx_addr=self.address,
            rx_addr=ctx.next_hop,
            size_bytes=size,
            duration_s=duration,
            seq=ctx.seq,
        )
        self._outgoing = frame
        self.stats.rts_tx += 1
        self._radio.transmit(
            frame, self._tech.frame_airtime(size, self._tech.basic_rate_bps)
        )

    def _send_response(self, frame_type: FrameType, to: int) -> None:
        # Scheduled before a crash, firing after: stay silent.
        if self._down:
            return
        # SIFS responses (ACK/CTS) preempt contention, but a half-duplex
        # radio that started talking in the meantime cannot send one.
        if self._radio.state.value == "tx":
            return
        size = self._params.frame_size(frame_type)
        duration = 0.0
        if frame_type is FrameType.CTS:
            # Reserve through DATA + ACK (conservatively for a max frame is
            # not possible — we do not know the size — so reserve SIFS+ACK
            # beyond a typical data frame the way ns-2 does via the RTS
            # duration; third parties already hold the RTS reservation).
            duration = 2 * self._params.sifs_s + self._params.ack_tx_time()
        frame = Frame(
            frame_type=frame_type,
            tx_addr=self.address,
            rx_addr=to,
            size_bytes=size,
            duration_s=duration,
        )
        if frame_type is FrameType.ACK:
            self.stats.ack_tx += 1
        else:
            self.stats.cts_tx += 1
        self._radio.transmit(
            frame, self._tech.frame_airtime(size, self._tech.basic_rate_bps)
        )

    # -- responses and retries --------------------------------------------------

    def _on_response(self, frame_type: FrameType) -> None:
        ctx = self._current
        if ctx is None or self._response_timer is None:
            return
        if frame_type is FrameType.ACK and ctx.phase == "data":
            self._response_timer.cancel()
            self._response_timer = None
            self._complete()
        elif frame_type is FrameType.CTS and ctx.phase == "rts":
            self._response_timer.cancel()
            self._response_timer = None
            ctx.phase = "data"
            self._sim.schedule(self._params.sifs_s, self._transmit_after_cts)

    def _transmit_after_cts(self) -> None:
        if self._down:
            return
        ctx = self._current
        if ctx is None or ctx.phase != "data":
            return
        if self._radio.state.value == "tx":
            return
        self._transmit_data(ctx)

    def _response_timeout(self) -> None:
        self._response_timer = None
        ctx = self._current
        if ctx is None:
            return
        limit = (
            self._params.long_retry_limit
            if ctx.use_rts
            else self._params.short_retry_limit
        )
        ctx.retries += 1
        if ctx.retries >= limit:
            self.stats.retry_drops += 1
            packet, next_hop = ctx.packet, ctx.next_hop
            self._complete()
            self._on_failure(packet, next_hop)
            return
        self.stats.retransmissions += 1
        if ctx.use_rts:
            ctx.phase = "rts"
        book, i = self._book, self._slot
        book.double_cw(i, self._params.cw_max)
        book.backoff_slots[i] = int(self._rng.integers(0, int(book.cw[i]) + 1))
        book.need_backoff[i] = True
        self._begin_access()

    def _complete(self) -> None:
        """Finish the current exchange (success or final drop) and move on."""
        self._current = None
        # Post-transmission backoff: the standard requires a fresh backoff
        # before the next frame, which also de-synchronises flooding storms.
        self._book.reset(self._slot, self._params.cw_min)
        self._serve()

    # -- NAV -----------------------------------------------------------------

    def _update_nav(self, until: float) -> None:
        if until <= float(self._book.nav_until[self._slot]):
            return
        self._book.nav_until[self._slot] = until
        if self._nav_wakeup is not None:
            self._nav_wakeup.cancel()
        self._nav_wakeup = self._sim.schedule(
            until - self._sim.now, self._nav_expired
        )

    def _nav_expired(self) -> None:
        self._nav_wakeup = None
        if not self._radio.medium_busy():
            self._begin_access()
