"""Statistical analysis of mobility processes (the BA's "Tools" block).

Everything paper Section IV-A/B measures lives here: the fundamental
diagram (Fig. 4), space-time jam structure (Fig. 5), average-velocity
realisations (Fig. 6), spectral SRD/LRD classification (Fig. 7), transient
time estimation, and radio-connectivity analysis of traces (Fig. 1).
"""

from repro.analysis.correlation import autocorrelation, hurst_aggregated_variance, hurst_rescaled_range
from repro.analysis.connectivity import (
    connectivity_graph,
    connectivity_series,
    largest_component_fraction,
    pair_connectivity_series,
    path_exists,
)
from repro.analysis.fundamental import FundamentalDiagram, fundamental_diagram
from repro.analysis.headways import (
    HeadwaySummary,
    headway_distribution,
    headway_summary,
    headways,
)
from repro.analysis.montecarlo import MonteCarloResult, monte_carlo
from repro.analysis.render import (
    render_bars,
    render_heatmap,
    render_sparkline,
    render_spacetime,
)
from repro.analysis.spacetime import jam_fraction_series, spacetime_matrix, wave_speed_estimate
from repro.analysis.stationary import (
    StationarityResult,
    recommended_discard,
    stationarity_test,
)
from repro.analysis.spectral import periodogram, spectral_slope_at_origin
from repro.analysis.topology import (
    TopologyChangeSummary,
    link_change_series,
    link_lifetimes,
    topology_change_summary,
)
from repro.analysis.transient import transient_time
from repro.analysis.velocity import ensemble_mean_velocity, time_average_velocity

__all__ = [
    "FundamentalDiagram",
    "fundamental_diagram",
    "HeadwaySummary",
    "headways",
    "headway_distribution",
    "headway_summary",
    "MonteCarloResult",
    "monte_carlo",
    "spacetime_matrix",
    "jam_fraction_series",
    "wave_speed_estimate",
    "periodogram",
    "render_bars",
    "render_heatmap",
    "render_sparkline",
    "render_spacetime",
    "spectral_slope_at_origin",
    "StationarityResult",
    "stationarity_test",
    "recommended_discard",
    "autocorrelation",
    "hurst_aggregated_variance",
    "hurst_rescaled_range",
    "TopologyChangeSummary",
    "link_change_series",
    "link_lifetimes",
    "topology_change_summary",
    "transient_time",
    "time_average_velocity",
    "ensemble_mean_velocity",
    "connectivity_graph",
    "connectivity_series",
    "largest_component_fraction",
    "pair_connectivity_series",
    "path_exists",
]
