"""Topology-change analysis of mobility traces.

The paper's conclusion names "topology change" as a metric to consider in
future work; this module implements it.  The radio topology at each trace
sample is the unit-disk graph of the node positions; the change rate is
how many links appear/disappear per second, and link lifetimes say how
long a route over those links could possibly survive.
"""

from __future__ import annotations

import dataclasses
from typing import List, Set, Tuple

import numpy as np

from repro.analysis.connectivity import connectivity_graph
from repro.mobility.trace import MobilityTrace


@dataclasses.dataclass(frozen=True)
class TopologyChangeSummary:
    """Aggregated topology dynamics of a trace.

    Attributes:
        mean_links: average number of radio links present.
        changes_per_second: links appearing + disappearing, per second.
        mean_link_lifetime_s: average contiguous lifetime of a link
            (censored links — alive at either trace edge — included at
            their observed length, so this is a lower bound).
        num_link_births: how many times any link (re)appeared.
    """

    mean_links: float
    changes_per_second: float
    mean_link_lifetime_s: float
    num_link_births: int


def _edge_sets(trace: MobilityTrace, tx_range: float) -> List[Set[Tuple[int, int]]]:
    return [
        set(
            tuple(sorted(edge))
            for edge in connectivity_graph(
                trace.positions[row], tx_range
            ).edges()
        )
        for row in range(trace.num_samples)
    ]


def link_change_series(
    trace: MobilityTrace, tx_range: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-interval topology churn.

    Returns ``(interval_end_times, changes)`` where ``changes[k]`` is the
    number of links that appeared plus disappeared between samples ``k``
    and ``k+1``.
    """
    edges = _edge_sets(trace, tx_range)
    changes = np.array(
        [
            len(edges[k] ^ edges[k + 1])
            for k in range(len(edges) - 1)
        ]
    )
    return trace.times[1:].copy(), changes


def link_lifetimes(trace: MobilityTrace, tx_range: float) -> np.ndarray:
    """Observed contiguous lifetime (seconds) of every link episode.

    A link that flaps contributes one entry per contiguous episode.
    Episodes still alive at the end of the trace are included at their
    observed (censored) length.
    """
    edges = _edge_sets(trace, tx_range)
    times = trace.times
    alive = {}  # edge -> start time
    lifetimes: List[float] = []
    for k, current in enumerate(edges):
        now = float(times[k])
        for edge in list(alive):
            if edge not in current:
                lifetimes.append(now - alive.pop(edge))
        for edge in current:
            if edge not in alive:
                alive[edge] = now
    end = float(times[-1])
    lifetimes.extend(end - start for start in alive.values())
    return np.array(lifetimes)


def topology_change_summary(
    trace: MobilityTrace, tx_range: float
) -> TopologyChangeSummary:
    """One-stop summary of a trace's topology dynamics."""
    if trace.num_samples < 2:
        raise ValueError("need at least two samples to observe change")
    edges = _edge_sets(trace, tx_range)
    _times, changes = link_change_series(trace, tx_range)
    lifetimes = link_lifetimes(trace, tx_range)
    births = 0
    for k in range(len(edges) - 1):
        births += len(edges[k + 1] - edges[k])
    births += len(edges[0])
    duration = float(trace.times[-1] - trace.times[0])
    return TopologyChangeSummary(
        mean_links=float(np.mean([len(e) for e in edges])),
        changes_per_second=float(changes.sum() / duration),
        mean_link_lifetime_s=(
            float(lifetimes.mean()) if len(lifetimes) else 0.0
        ),
        num_link_births=births,
    )
