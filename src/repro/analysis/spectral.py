"""Spectral analysis: the periodogram SRD/LRD test (paper Fig. 7).

For the deterministic model (p = 0) the average velocity is short-range
dependent and its periodogram stays bounded as f -> 0.  For 0 < p < 1 the
process is long-range dependent: the periodogram diverges at the origin
like 1/f^alpha, the "1/f noise" footprint of real traffic the paper cites.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import signal


def periodogram(
    series: np.ndarray, sample_rate: float = 1.0, detrend: str = "constant"
) -> Tuple[np.ndarray, np.ndarray]:
    """Power spectral density estimate of a time series.

    Returns ``(frequencies, power)`` with the zero-frequency bin dropped
    (its value reflects only the mean, which is removed anyway).
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {series.shape}")
    if len(series) < 8:
        raise ValueError(f"series too short for a periodogram: {len(series)}")
    freqs, power = signal.periodogram(
        series, fs=sample_rate, detrend=detrend, scaling="density"
    )
    return freqs[1:], power[1:]


def spectral_slope_at_origin(
    series: np.ndarray,
    sample_rate: float = 1.0,
    low_fraction: float = 0.1,
) -> float:
    """Log-log slope of the periodogram over the lowest frequencies.

    Fits ``log P(f) ~ slope * log f`` over the smallest ``low_fraction`` of
    the positive frequencies.  A slope near 0 indicates an SRD process
    (bounded spectrum at the origin, paper Fig. 7-a); a clearly negative
    slope indicates LRD 1/f-like divergence (Fig. 7-b).

    Zero-power bins are dropped before taking logs (they would otherwise
    produce -inf; they occur for exactly periodic deterministic series).
    """
    if not 0.0 < low_fraction <= 1.0:
        raise ValueError(f"low_fraction must be in (0, 1], got {low_fraction}")
    freqs, power = periodogram(series, sample_rate)
    count = max(int(len(freqs) * low_fraction), 4)
    freqs, power = freqs[:count], power[:count]
    keep = power > 0
    if keep.sum() < 2:
        return 0.0
    slope = np.polyfit(np.log(freqs[keep]), np.log(power[keep]), 1)[0]
    return float(slope)
