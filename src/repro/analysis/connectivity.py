"""Radio-connectivity analysis of node placements (paper Fig. 1).

The mobility model feeds a *network*: what ultimately matters is whether
nodes are within radio range of each other.  These helpers build the
unit-disk connectivity graph of a placement and quantify the effects the
paper illustrates in Fig. 1 — relay nodes on a parallel lane filling
connectivity gaps, and the head/tail disconnection of the pre-improvement
straight-line road.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.mobility.trace import MobilityTrace


def connectivity_graph(positions: np.ndarray, tx_range: float) -> nx.Graph:
    """Unit-disk graph: an edge wherever two nodes are within ``tx_range``.

    ``positions`` is an ``(N, 2)`` array of plane coordinates in metres.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(
            f"positions must have shape (N, 2), got {positions.shape}"
        )
    if tx_range <= 0:
        raise ValueError(f"tx_range must be > 0, got {tx_range}")
    n = len(positions)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    if n > 1:
        deltas = positions[:, None, :] - positions[None, :, :]
        distances = np.linalg.norm(deltas, axis=2)
        rows, cols = np.nonzero(np.triu(distances <= tx_range, k=1))
        graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return graph


def largest_component_fraction(graph: nx.Graph) -> float:
    """Fraction of nodes in the largest connected component."""
    if graph.number_of_nodes() == 0:
        raise ValueError("graph has no nodes")
    largest = max(nx.connected_components(graph), key=len)
    return len(largest) / graph.number_of_nodes()


def path_exists(graph: nx.Graph, source: int, target: int) -> bool:
    """True when a multi-hop path connects ``source`` and ``target``."""
    return nx.has_path(graph, source, target)


def connectivity_series(trace: MobilityTrace, tx_range: float) -> np.ndarray:
    """Largest-component fraction at every trace sample, shape ``(T,)``."""
    return np.array(
        [
            largest_component_fraction(
                connectivity_graph(trace.positions[row], tx_range)
            )
            for row in range(trace.num_samples)
        ]
    )


def pair_connectivity_series(
    trace: MobilityTrace, tx_range: float, source: int, target: int
) -> np.ndarray:
    """Boolean series: does a path from ``source`` to ``target`` exist at
    each sample?  Used to quantify the line-vs-circle ablation."""
    return np.array(
        [
            path_exists(
                connectivity_graph(trace.positions[row], tx_range),
                source,
                target,
            )
            for row in range(trace.num_samples)
        ]
    )
