"""Transient-time estimation (paper Section IV-B).

Before sampling a process "in its stationary regime" one must know how many
initial samples to discard.  For the deterministic NaS model the paper
measures the transient time tau directly; this module implements that
measurement for any recorded series.
"""

from __future__ import annotations

import numpy as np


def transient_time(
    series: np.ndarray,
    tolerance: float = 0.01,
    tail_fraction: float = 0.25,
) -> int:
    """First index after which the series stays near its stationary value.

    The stationary value is estimated as the mean of the last
    ``tail_fraction`` of the series; the transient time is the smallest
    index ``tau`` such that every later sample lies within
    ``tolerance * max(|stationary|, 1)`` of it.  Returns ``len(series)``
    when the series never settles (within the recorded window).

    The strict stay-inside-forever criterion suits deterministic or
    low-noise series (the paper's p = 0 measurement); for a noisy series
    whose stationary fluctuations brush the band, smooth (e.g. moving
    average) before estimating, or widen ``tolerance``.
    """
    series = np.asarray(series, dtype=float)
    n = len(series)
    if n < 4:
        raise ValueError(f"series too short: {n}")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError(
            f"tail_fraction must be in (0, 1], got {tail_fraction}"
        )
    tail_start = n - max(int(n * tail_fraction), 2)
    stationary = series[tail_start:].mean()
    band = tolerance * max(abs(stationary), 1.0)
    outside = np.abs(series - stationary) > band
    if not outside.any():
        return 0
    last_outside = int(np.nonzero(outside)[0][-1])
    if last_outside == n - 1:
        return n  # never settled within the window
    return last_outside + 1
