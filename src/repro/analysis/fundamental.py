"""The fundamental diagram: traffic flow versus density (paper Fig. 4).

Each point is the ensemble average, over independent trials, of the
time-averaged flow ``J = rho * v`` of a trace — exactly the paper's
"ensemble average over 20 trials of a simulation trace lasting 500
iterations" for ``L = 400``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg
from repro.metrics.collector import CampaignTelemetry
from repro.util.errors import ConfigError, TrialError
from repro.util.rng import RngStreams


@dataclasses.dataclass(frozen=True)
class FundamentalDiagram:
    """Result of a density sweep.

    Attributes:
        densities: requested densities rho (vehicles per cell).
        flows: ensemble-mean time-averaged flow J at each density.
        flow_std: ensemble standard deviation of the per-trial flows.
        p: dawdling probability of the sweep.
        num_cells: lane length L.
        num_failed: trials dropped per density point (``None`` from older
            pickles; treated as all-zero).
    """

    densities: np.ndarray
    flows: np.ndarray
    flow_std: np.ndarray
    p: float
    num_cells: int
    num_failed: Optional[np.ndarray] = None

    @property
    def total_failed(self) -> int:
        """Trials dropped from the ensemble across every density."""
        if self.num_failed is None:
            return 0
        return int(np.sum(self.num_failed))

    def peak(self) -> tuple:
        """Return ``(density, flow)`` of the maximum measured flow."""
        index = int(np.argmax(self.flows))
        return float(self.densities[index]), float(self.flows[index])


def _fd_trial(
    root_seed: int,
    density_index: int,
    trial: int,
    density: float,
    p: float,
    num_cells: int,
    steps: int,
    warmup: int,
    v_max: int,
) -> float:
    """Trial function for the runner: one trace's time-averaged flow.

    The generator is derived from ``(root_seed, stream name)`` alone, so
    the trial reproduces identically in any process and any order.
    """
    generator = RngStreams(root_seed).stream(f"fd-{density_index}-{trial}")
    model = NagelSchreckenberg.from_density(
        num_cells,
        density,
        random_start=True,
        rng=generator,
        p=p,
        v_max=v_max,
    )
    history = evolve(model, steps, warmup=warmup)
    return float(history.flow_series().mean())


def fundamental_diagram(
    densities: Sequence[float],
    p: float,
    num_cells: int = 400,
    trials: int = 20,
    steps: int = 500,
    warmup: int = 0,
    v_max: int = 5,
    rng: Optional[RngStreams] = None,
    max_workers: int = 1,
    trial_timeout_s: Optional[float] = None,
    max_attempts: int = 2,
    telemetry: Optional[CampaignTelemetry] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    backend: str = "auto",
    lease_ttl_s: float = 30.0,
) -> FundamentalDiagram:
    """Sweep densities and measure the ensemble-average flow.

    Initial placements are random per trial (so trials differ even for the
    deterministic ``p = 0`` model, where the dynamics have no randomness of
    their own).  The ``(density, trial)`` grid fans out through
    :mod:`repro.core.runner` when ``max_workers > 1``, with results
    element-wise identical to a serial run of the same seeds.

    With ``journal_path``/``resume`` each trial's flow is durably
    journalled and skipped on restart; the journal fingerprint covers the
    density grid, lane length, trial/step counts and the root seed.
    """
    if trials < 1:
        raise ConfigError(f"trials must be >= 1, got {trials}")
    from repro.core.journal import campaign_fingerprint, open_journal
    from repro.core.runner import TrialRunner, TrialSpec

    streams = rng if rng is not None else RngStreams(0)
    specs = [
        TrialSpec(
            key=(float(density), trial),
            fn=_fd_trial,
            args=(
                streams.seed, i, trial, float(density), float(p),
                int(num_cells), int(steps), int(warmup), int(v_max),
            ),
        )
        for i, density in enumerate(densities)
        for trial in range(trials)
    ]
    fingerprint = campaign_fingerprint(
        kind="fundamental",
        densities=[float(d) for d in densities],
        p=float(p),
        num_cells=int(num_cells),
        trials=trials,
        steps=int(steps),
        warmup=int(warmup),
        v_max=int(v_max),
        seed=streams.seed,
    )
    journal = open_journal(journal_path, fingerprint, resume)
    runner = TrialRunner(
        max_workers=max_workers,
        trial_timeout_s=trial_timeout_s,
        max_attempts=max_attempts,
        telemetry=telemetry,
        backend=backend,
        lease_ttl_s=lease_ttl_s,
        retry_seed=streams.seed,
    )
    try:
        outcomes = runner.run(specs, journal=journal)
    finally:
        if journal is not None:
            journal.close()
    flows = np.empty(len(densities))
    flow_std = np.empty(len(densities))
    num_failed = np.zeros(len(densities), dtype=int)
    for i in range(len(densities)):
        per_point = outcomes[i * trials:(i + 1) * trials]
        surviving = np.array([o.value for o in per_point if o.ok])
        if surviving.size == 0:
            raise TrialError(
                f"all {trials} trials failed at density index {i}; "
                f"first error:\n{per_point[0].error}",
                key=per_point[0].key,
                attempts=per_point[0].attempts,
            )
        flows[i] = surviving.mean()
        flow_std[i] = surviving.std(ddof=1) if surviving.size > 1 else 0.0
        num_failed[i] = trials - surviving.size
    return FundamentalDiagram(
        densities=np.asarray(densities, dtype=float),
        flows=flows,
        flow_std=flow_std,
        p=float(p),
        num_cells=int(num_cells),
        num_failed=num_failed,
    )
