"""The fundamental diagram: traffic flow versus density (paper Fig. 4).

Each point is the ensemble average, over independent trials, of the
time-averaged flow ``J = rho * v`` of a trace — exactly the paper's
"ensemble average over 20 trials of a simulation trace lasting 500
iterations" for ``L = 400``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg
from repro.util.rng import RngStreams


@dataclasses.dataclass(frozen=True)
class FundamentalDiagram:
    """Result of a density sweep.

    Attributes:
        densities: requested densities rho (vehicles per cell).
        flows: ensemble-mean time-averaged flow J at each density.
        flow_std: ensemble standard deviation of the per-trial flows.
        p: dawdling probability of the sweep.
        num_cells: lane length L.
    """

    densities: np.ndarray
    flows: np.ndarray
    flow_std: np.ndarray
    p: float
    num_cells: int

    def peak(self) -> tuple:
        """Return ``(density, flow)`` of the maximum measured flow."""
        index = int(np.argmax(self.flows))
        return float(self.densities[index]), float(self.flows[index])


def fundamental_diagram(
    densities: Sequence[float],
    p: float,
    num_cells: int = 400,
    trials: int = 20,
    steps: int = 500,
    warmup: int = 0,
    v_max: int = 5,
    rng: Optional[RngStreams] = None,
) -> FundamentalDiagram:
    """Sweep densities and measure the ensemble-average flow.

    Initial placements are random per trial (so trials differ even for the
    deterministic ``p = 0`` model, where the dynamics have no randomness of
    their own).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    streams = rng if rng is not None else RngStreams(0)
    flows = np.empty(len(densities))
    flow_std = np.empty(len(densities))
    for i, density in enumerate(densities):
        per_trial = np.empty(trials)
        for trial in range(trials):
            generator = streams.stream(f"fd-{i}-{trial}")
            model = NagelSchreckenberg.from_density(
                num_cells,
                density,
                random_start=True,
                rng=generator,
                p=p,
                v_max=v_max,
            )
            history = evolve(model, steps, warmup=warmup)
            per_trial[trial] = history.flow_series().mean()
        flows[i] = per_trial.mean()
        flow_std[i] = per_trial.std(ddof=1) if trials > 1 else 0.0
    return FundamentalDiagram(
        densities=np.asarray(densities, dtype=float),
        flows=flows,
        flow_std=flow_std,
        p=float(p),
        num_cells=int(num_cells),
    )
