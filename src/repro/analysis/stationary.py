"""Stationarity checking of simulation series (paper Section IV-B).

The paper's stationary-distribution discussion asks two practical
questions: does a steady-state distribution exist, and from which sample
onward may one treat the series as drawn from it?  These helpers answer
empirically: split the (transient-trimmed) series in two and compare the
halves' empirical distributions with a two-sample Kolmogorov-Smirnov
test.  A process still in its transient (or with a drifting mean) fails;
a relaxed one passes.

Caveat, stated once: KS p-values assume independent samples, and v(t) is
autocorrelated — for LRD settings (0 < p < 1, the paper's point exactly)
expect rejection even in "steady state", because very distant samples
remain dependent.  The test is a diagnostic, not a proof.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import stats

from repro.analysis.transient import transient_time


@dataclasses.dataclass(frozen=True)
class StationarityResult:
    """Outcome of the split-half distribution comparison.

    Attributes:
        ks_statistic: the two-sample KS statistic between the halves.
        p_value: its p-value (see module caveat on autocorrelation).
        stationary: True when the halves are statistically compatible at
            the chosen significance level.
        discarded: samples trimmed from the front before splitting.
    """

    ks_statistic: float
    p_value: float
    stationary: bool
    discarded: int


def stationarity_test(
    series: np.ndarray,
    discard: int = 0,
    alpha: float = 0.01,
    thin: int = 1,
) -> StationarityResult:
    """Split-half KS test for distributional stationarity.

    ``discard`` trims the known transient; ``thin`` keeps every k-th
    sample (a crude decorrelation that makes the KS assumptions less
    wrong for short-memory series).
    """
    series = np.asarray(series, dtype=float)
    if discard < 0 or len(series) - discard < 8:
        raise ValueError(
            "need >= 8 samples after discarding, got "
            f"{len(series) - discard}"
        )
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if thin < 1:
        raise ValueError(f"thin must be >= 1, got {thin}")
    trimmed = series[discard:][::thin]
    half = len(trimmed) // 2
    first, second = trimmed[:half], trimmed[half:]
    if np.array_equal(
        np.unique(first), np.unique(second)
    ) and len(np.unique(trimmed)) == 1:
        # A constant series is trivially stationary; KS would emit NaNs.
        return StationarityResult(0.0, 1.0, True, discard)
    statistic, p_value = stats.ks_2samp(first, second)
    return StationarityResult(
        ks_statistic=float(statistic),
        p_value=float(p_value),
        stationary=bool(p_value >= alpha),
        discarded=discard,
    )


def recommended_discard(series: np.ndarray, tolerance: float = 0.02) -> int:
    """How many leading samples to drop before sampling the stationary
    regime — the paper's "how many samples should be removed from the
    starting point" question, answered via the transient estimator."""
    return transient_time(np.asarray(series, dtype=float), tolerance)
