"""Autocorrelation and long-range-dependence estimators.

The paper's footnote 2 defines SRD/LRD through the summability of the
autocorrelation function r(k).  Directly testing summability from a finite
sample is ill-posed, so alongside the empirical r(k) this module provides
two standard Hurst-exponent estimators: H ~ 0.5 for SRD processes, H > 0.5
(typically 0.7-0.9) for the LRD regime of the stochastic NaS model.
"""

from __future__ import annotations

import numpy as np


def autocorrelation(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Empirical autocorrelation r(k) for k = 0 .. max_lag.

    Uses the biased estimator (normalising by N), which is positive
    semi-definite and the convention in the time-series literature.
    A constant series has undefined correlation; returns r(0)=1 and 0
    elsewhere in that case.
    """
    series = np.asarray(series, dtype=float)
    n = len(series)
    if n < 2:
        raise ValueError(f"series too short: {n}")
    if not 0 <= max_lag < n:
        raise ValueError(f"max_lag must be in [0, {n - 1}], got {max_lag}")
    centered = series - series.mean()
    variance = float(np.dot(centered, centered)) / n
    result = np.zeros(max_lag + 1)
    result[0] = 1.0
    if variance == 0:
        return result
    for lag in range(1, max_lag + 1):
        result[lag] = float(np.dot(centered[:-lag], centered[lag:])) / (
            n * variance
        )
    return result


def hurst_aggregated_variance(
    series: np.ndarray, min_block: int = 4, num_scales: int = 10
) -> float:
    """Hurst exponent via the aggregated-variance method.

    The series is averaged over blocks of size m; for an LRD process the
    variance of the block means decays like m^(2H - 2).  Fitting that power
    law over a geometric ladder of block sizes yields H.
    """
    series = np.asarray(series, dtype=float)
    n = len(series)
    if n < min_block * 4:
        raise ValueError(f"series too short for {min_block}-blocks: {n}")
    max_block = n // 4
    sizes = np.unique(
        np.geomspace(min_block, max_block, num_scales).astype(int)
    )
    variances = []
    kept_sizes = []
    for m in sizes:
        blocks = n // m
        means = series[: blocks * m].reshape(blocks, m).mean(axis=1)
        v = means.var(ddof=1) if blocks > 1 else 0.0
        if v > 0:
            variances.append(v)
            kept_sizes.append(m)
    if len(kept_sizes) < 2:
        return 0.5  # degenerate (constant) series: no detectable memory
    slope = np.polyfit(np.log(kept_sizes), np.log(variances), 1)[0]
    return float(1.0 + slope / 2.0)


def hurst_rescaled_range(
    series: np.ndarray, min_block: int = 8, num_scales: int = 10
) -> float:
    """Hurst exponent via the classical rescaled-range (R/S) statistic.

    For each block size m the range of the cumulative deviations divided by
    the standard deviation scales like m^H.
    """
    series = np.asarray(series, dtype=float)
    n = len(series)
    if n < min_block * 4:
        raise ValueError(f"series too short for {min_block}-blocks: {n}")
    max_block = n // 2
    sizes = np.unique(
        np.geomspace(min_block, max_block, num_scales).astype(int)
    )
    log_sizes, log_rs = [], []
    for m in sizes:
        blocks = n // m
        rs_values = []
        for b in range(blocks):
            block = series[b * m : (b + 1) * m]
            std = block.std(ddof=0)
            if std == 0:
                continue
            deviations = np.cumsum(block - block.mean())
            rs_values.append((deviations.max() - deviations.min()) / std)
        if rs_values:
            log_sizes.append(np.log(m))
            log_rs.append(np.log(np.mean(rs_values)))
    if len(log_sizes) < 2:
        return 0.5
    return float(np.polyfit(log_sizes, log_rs, 1)[0])
