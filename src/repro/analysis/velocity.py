"""Average-velocity statistics of NaS runs (paper Fig. 6)."""

from __future__ import annotations

import numpy as np

from repro.ca.history import CaHistory


def time_average_velocity(history: CaHistory, discard: int = 0) -> float:
    """Time average of v(t), optionally discarding the first ``discard``
    recorded steps as transient (paper Section IV-B's sample-removal).
    """
    series = history.mean_velocity_series()
    if discard < 0 or discard >= len(series):
        raise ValueError(
            f"discard must be in [0, {len(series) - 1}], got {discard}"
        )
    return float(series[discard:].mean())


def ensemble_mean_velocity(
    histories: list, discard: int = 0
) -> np.ndarray:
    """Pointwise ensemble average of v(t) over several runs.

    All histories must record the same number of steps.  Returns the mean
    series with the first ``discard`` samples removed.
    """
    if not histories:
        raise ValueError("need at least one history")
    series = np.stack([h.mean_velocity_series() for h in histories])
    if discard < 0 or discard >= series.shape[1]:
        raise ValueError(
            f"discard must be in [0, {series.shape[1] - 1}], got {discard}"
        )
    return series[:, discard:].mean(axis=0)
