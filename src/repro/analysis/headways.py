"""Headway (inter-vehicle gap) statistics of NaS runs.

The headway distribution is the microscopic fingerprint of the two
traffic regimes: in free flow the gaps are broad and bounded away from
zero; in the jammed regime a heavy spike of zero-gap (bumper-to-bumper)
vehicles appears.  These helpers extract it from a recorded history.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ca.history import CaHistory


@dataclasses.dataclass(frozen=True)
class HeadwaySummary:
    """Aggregate gap statistics over a history.

    Attributes:
        mean_cells: average gap in cells.
        std_cells: gap standard deviation.
        zero_fraction: fraction of observations with gap 0
            (bumper-to-bumper — the jam signature).
        p95_cells: 95th-percentile gap.
    """

    mean_cells: float
    std_cells: float
    zero_fraction: float
    p95_cells: float


def headways(history: CaHistory) -> np.ndarray:
    """All per-step per-vehicle gaps of a history, shape ``(T+1, N)``.

    On the ring, vehicle ``i``'s leader is the next vehicle in ring order
    (ring order is invariant — no overtaking).
    """
    positions = history.positions
    leader = np.roll(positions, -1, axis=1)
    return (leader - positions - 1) % history.num_cells


def headway_distribution(
    history: CaHistory, max_gap: int = 20
) -> np.ndarray:
    """Empirical gap distribution: ``P(gap = k)`` for ``k = 0..max_gap``.

    Gaps above ``max_gap`` are folded into the last bin.
    """
    if max_gap < 1:
        raise ValueError(f"max_gap must be >= 1, got {max_gap}")
    gaps = np.minimum(headways(history).ravel(), max_gap)
    counts = np.bincount(gaps, minlength=max_gap + 1)
    return counts / counts.sum()


def headway_summary(history: CaHistory) -> HeadwaySummary:
    """Summary statistics of the gaps in a history."""
    gaps = headways(history).ravel()
    return HeadwaySummary(
        mean_cells=float(gaps.mean()),
        std_cells=float(gaps.std()),
        zero_fraction=float((gaps == 0).mean()),
        p95_cells=float(np.percentile(gaps, 95)),
    )
