"""Monte-Carlo ensemble running.

CAVENET "can also run Monte Carlo simulations" (paper Section IV-A): the
fundamental diagram averages 20 independent trials per point.  This module
generalises that pattern: run any seeded experiment several times and
aggregate.  Trials fan out through :mod:`repro.core.runner`; each trial's
generator is derived from ``(root seed, stream name)`` alone, so the same
seeds produce bit-identical samples whether the ensemble runs serially or
across worker processes.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro.metrics.collector import CampaignTelemetry
from repro.util.errors import ConfigError, TrialError
from repro.util.rng import RngStreams


@dataclasses.dataclass(frozen=True)
class MonteCarloResult:
    """Aggregate of a repeated experiment.

    Attributes:
        samples: per-trial results stacked on axis 0 (scalars become a 1-D
            array, arrays an (trials, ...) array).
        mean: sample mean over trials.
        std: sample standard deviation over trials (ddof=1; zeros for a
            single trial).
        num_failed: trials dropped because they failed even after retries.
    """

    samples: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    num_failed: int = 0

    @property
    def num_trials(self) -> int:
        """Number of trials aggregated."""
        return self.samples.shape[0]


def _mc_trial(
    experiment: Callable[[np.random.Generator], "np.typing.ArrayLike"],
    root_seed: int,
    stream_prefix: str,
    trial: int,
) -> np.ndarray:
    """Trial function for the runner: one experiment with its own stream.

    The generator depends only on ``(root_seed, stream name)`` — exactly
    how :class:`RngStreams` seeds a fresh stream — so any process, retry
    or execution order reproduces the same draw sequence.
    """
    generator = RngStreams(root_seed).stream(f"{stream_prefix}-{trial}")
    return np.asarray(experiment(generator), dtype=float)


def monte_carlo(
    experiment: Callable[[np.random.Generator], "np.typing.ArrayLike"],
    trials: int,
    rng: Optional[RngStreams] = None,
    stream_prefix: str = "mc",
    max_workers: int = 1,
    trial_timeout_s: Optional[float] = None,
    max_attempts: int = 2,
    telemetry: Optional[CampaignTelemetry] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    backend: str = "auto",
    lease_ttl_s: float = 30.0,
) -> MonteCarloResult:
    """Run ``experiment`` ``trials`` times with independent generators.

    Each trial receives its own deterministic generator derived from the
    root seed, so the whole ensemble is reproducible and individual trials
    can be re-run in isolation for debugging.  ``max_workers > 1`` fans the
    trials out across processes with element-wise identical ``samples``;
    failed trials are retried, then dropped (``num_failed`` counts them) —
    an ensemble where every trial failed raises
    :class:`~repro.util.errors.TrialError`.

    With ``journal_path``/``resume`` each completed trial is durably
    journalled and skipped on restart; the journal fingerprint covers the
    experiment's identity, the seed, the stream prefix and the trial count.
    """
    if trials < 1:
        raise ConfigError(f"trials must be >= 1, got {trials}")
    from repro.core.journal import campaign_fingerprint, open_journal
    from repro.core.runner import TrialRunner, TrialSpec

    streams = rng if rng is not None else RngStreams(0)
    specs = [
        TrialSpec(
            key=trial,
            fn=_mc_trial,
            args=(experiment, streams.seed, stream_prefix, trial),
        )
        for trial in range(trials)
    ]
    fingerprint = campaign_fingerprint(
        kind="monte_carlo",
        experiment=f"{getattr(experiment, '__module__', '?')}."
        f"{getattr(experiment, '__qualname__', repr(experiment))}",
        seed=streams.seed,
        stream_prefix=stream_prefix,
        trials=trials,
    )
    journal = open_journal(journal_path, fingerprint, resume)
    runner = TrialRunner(
        max_workers=max_workers,
        trial_timeout_s=trial_timeout_s,
        max_attempts=max_attempts,
        telemetry=telemetry,
        backend=backend,
        lease_ttl_s=lease_ttl_s,
        retry_seed=streams.seed,
    )
    try:
        outcomes = runner.run(specs, journal=journal)
    finally:
        if journal is not None:
            journal.close()
    surviving = [o.value for o in outcomes if o.ok]
    failed = [o for o in outcomes if not o.ok]
    if not surviving:
        raise TrialError(
            f"all {trials} Monte-Carlo trials failed; first error:\n"
            f"{failed[0].error}",
            key=failed[0].key,
            attempts=failed[0].attempts,
        )
    samples = np.stack(surviving)
    std = (
        samples.std(axis=0, ddof=1)
        if len(surviving) > 1
        else np.zeros_like(samples[0], dtype=float)
    )
    return MonteCarloResult(
        samples=samples,
        mean=samples.mean(axis=0),
        std=std,
        num_failed=len(failed),
    )
