"""Monte-Carlo ensemble running.

CAVENET "can also run Monte Carlo simulations" (paper Section IV-A): the
fundamental diagram averages 20 independent trials per point.  This module
generalises that pattern: run any seeded experiment several times and
aggregate.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro.util.rng import RngStreams


@dataclasses.dataclass(frozen=True)
class MonteCarloResult:
    """Aggregate of a repeated experiment.

    Attributes:
        samples: per-trial results stacked on axis 0 (scalars become a 1-D
            array, arrays an (trials, ...) array).
        mean: sample mean over trials.
        std: sample standard deviation over trials (ddof=1; zeros for a
            single trial).
    """

    samples: np.ndarray
    mean: np.ndarray
    std: np.ndarray

    @property
    def num_trials(self) -> int:
        """Number of trials aggregated."""
        return self.samples.shape[0]


def monte_carlo(
    experiment: Callable[[np.random.Generator], "np.typing.ArrayLike"],
    trials: int,
    rng: Optional[RngStreams] = None,
    stream_prefix: str = "mc",
) -> MonteCarloResult:
    """Run ``experiment`` ``trials`` times with independent generators.

    Each trial receives its own deterministic generator derived from the
    root streams, so the whole ensemble is reproducible and individual
    trials can be re-run in isolation for debugging.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    streams = rng if rng is not None else RngStreams(0)
    results = []
    for trial in range(trials):
        generator = streams.stream(f"{stream_prefix}-{trial}")
        results.append(np.asarray(experiment(generator), dtype=float))
    samples = np.stack(results)
    std = (
        samples.std(axis=0, ddof=1)
        if trials > 1
        else np.zeros_like(samples[0], dtype=float)
    )
    return MonteCarloResult(samples=samples, mean=samples.mean(axis=0), std=std)
