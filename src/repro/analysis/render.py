"""Text rendering of analysis results.

CAVENET's original MATLAB block plotted figures; this library is
plot-library-free, so the equivalents are terminal renderings: space-time
diagrams as character rasters, time series as sparklines, goodput
surfaces as heat rasters and PDR comparisons as bar charts.  Every
renderer returns a plain string.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.ca.history import CaHistory

#: Sparkline glyphs from low to high.
_SPARKS = "▁▂▃▄▅▆▇█"
#: Heat glyphs from empty to dense.
_HEAT = " .:-=+*#%@"


def render_spacetime(
    history: CaHistory, max_rows: int = 24, max_cols: int = 78
) -> str:
    """Space-time diagram: time flows downward, road extends rightward.

    ``.`` empty road, ``o`` a moving vehicle, ``#`` a stopped (jammed)
    vehicle — the textual cousin of paper Fig. 5.
    """
    if max_rows < 1 or max_cols < 1:
        raise ValueError("max_rows and max_cols must be >= 1")
    matrix = history.occupancy_matrix()
    step_t = max(1, int(np.ceil(matrix.shape[0] / max_rows)))
    step_x = max(1, int(np.ceil(matrix.shape[1] / max_cols)))
    lines = []
    for t in range(0, matrix.shape[0], step_t):
        chars = []
        for x in range(0, matrix.shape[1], step_x):
            block = matrix[t, x : x + step_x]
            occupied = block[block >= 0]
            if occupied.size == 0:
                chars.append(".")
            elif (occupied == 0).any():
                chars.append("#")
            else:
                chars.append("o")
        lines.append("".join(chars))
    return "\n".join(lines)


def render_sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line sparkline of a series, resampled to ``width`` glyphs.

    NaNs render as spaces; a constant series renders at mid height.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    series = np.asarray(values, dtype=float)
    if series.size == 0:
        return ""
    if series.size > width:
        edges = np.linspace(0, series.size, width + 1).astype(int)
        series = np.array(
            [
                np.nanmean(series[a:b]) if b > a else np.nan
                for a, b in zip(edges[:-1], edges[1:])
            ]
        )
    finite = series[np.isfinite(series)]
    if finite.size == 0:
        return " " * len(series)
    low, high = float(finite.min()), float(finite.max())
    span = high - low
    chars = []
    for value in series:
        if not np.isfinite(value):
            chars.append(" ")
        elif span == 0:
            chars.append(_SPARKS[len(_SPARKS) // 2])
        else:
            index = int((value - low) / span * (len(_SPARKS) - 1))
            chars.append(_SPARKS[index])
    return "".join(chars)


def render_heatmap(
    matrix: np.ndarray,
    max_rows: int = 16,
    max_cols: int = 78,
) -> str:
    """A character raster of a 2-D non-negative matrix (e.g. the goodput
    surface of Figs. 8-10: senders x time)."""
    grid = np.asarray(matrix, dtype=float)
    if grid.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {grid.shape}")
    if max_rows < 1 or max_cols < 1:
        raise ValueError("max_rows and max_cols must be >= 1")
    step_r = max(1, int(np.ceil(grid.shape[0] / max_rows)))
    step_c = max(1, int(np.ceil(grid.shape[1] / max_cols)))
    peak = np.nanmax(grid) if grid.size else 0.0
    lines = []
    for r in range(0, grid.shape[0], step_r):
        chars = []
        for c in range(0, grid.shape[1], step_c):
            block = grid[r : r + step_r, c : c + step_c]
            value = float(np.nanmean(block))
            if peak <= 0 or not np.isfinite(value):
                chars.append(_HEAT[0])
            else:
                index = int(value / peak * (len(_HEAT) - 1))
                chars.append(_HEAT[index])
        lines.append("".join(chars))
    return "\n".join(lines)


def render_bars(
    values: Mapping[str, float],
    width: int = 40,
    max_value: Optional[float] = None,
    fmt: str = "{:.3f}",
) -> str:
    """A horizontal bar chart (the textual Fig. 11).

    Bars scale to ``max_value`` (default: the largest value present).

    >>> print(render_bars({"AODV": 0.7, "OLSR": 0.3}, width=10,
    ...                   max_value=1.0))
    AODV  ███████    0.700
    OLSR  ███        0.300
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if not values:
        return ""
    top = max_value if max_value is not None else max(values.values())
    if top <= 0:
        top = 1.0
    label_width = max(len(str(k)) for k in values)
    lines = []
    for label, value in values.items():
        filled = int(round(min(value, top) / top * width))
        bar = "█" * filled + " " * (width - filled)
        lines.append(
            f"{str(label):<{label_width}}  {bar} {fmt.format(value)}"
        )
    return "\n".join(lines)
