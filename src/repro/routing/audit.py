"""Routing-state auditing: loop detection across a running network.

Sequence numbers exist to "enforce loop freedom" (paper Section III-B.3);
this module checks the property directly: for a destination, follow each
node's current next hop and report any cycle that does not reach the
destination.  Useful both as a test oracle and as a debugging tool on a
live simulation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.routing.base import RoutingProtocol


@dataclasses.dataclass(frozen=True)
class RoutingAudit:
    """Outcome of a loop audit for one destination.

    Attributes:
        dst: the audited destination.
        loops: node cycles found (each a list of node ids, cycle order).
        reaching: nodes whose next-hop chain reaches ``dst``.
        dead_ends: nodes whose chain hits a node with no route.
    """

    dst: int
    loops: List[List[int]]
    reaching: List[int]
    dead_ends: List[int]

    @property
    def loop_free(self) -> bool:
        """True when no routing cycle exists for this destination."""
        return not self.loops


def next_hop_map(
    protocols: Dict[int, RoutingProtocol], dst: int
) -> Dict[int, Optional[int]]:
    """Each node's current next hop towards ``dst`` (None = no route)."""
    return {
        node_id: protocol.next_hop_for(dst)
        for node_id, protocol in protocols.items()
    }


def audit_destination(
    protocols: Dict[int, RoutingProtocol], dst: int
) -> RoutingAudit:
    """Follow every node's next-hop chain towards ``dst``.

    A chain terminates by reaching ``dst``, hitting a node without a
    route (dead end — legitimate during convergence), or revisiting a
    node (a loop — the failure sequence numbers exist to prevent).
    """
    hops = next_hop_map(protocols, dst)
    loops: List[List[int]] = []
    reaching: List[int] = []
    dead_ends: List[int] = []
    seen_loops = set()
    for start in protocols:
        if start == dst:
            continue
        path = [start]
        visited = {start}
        outcome = "dead_end"
        node = start
        while True:
            next_hop = hops.get(node)
            if next_hop is None:
                outcome = "dead_end"
                break
            if next_hop == dst:
                outcome = "reaching"
                break
            if next_hop in visited:
                cycle_start = path.index(next_hop)
                cycle = path[cycle_start:]
                key = frozenset(cycle)
                if key not in seen_loops:
                    seen_loops.add(key)
                    loops.append(cycle)
                outcome = "loop"
                break
            if next_hop not in hops:
                outcome = "dead_end"
                break
            visited.add(next_hop)
            path.append(next_hop)
            node = next_hop
        if outcome == "reaching":
            reaching.append(start)
        elif outcome == "dead_end":
            dead_ends.append(start)
    return RoutingAudit(
        dst=dst, loops=loops, reaching=reaching, dead_ends=dead_ends
    )


def audit_all(
    protocols: Dict[int, RoutingProtocol],
    destinations: Optional[Sequence[int]] = None,
) -> Dict[int, RoutingAudit]:
    """Audit every destination (default: every node)."""
    targets = destinations if destinations is not None else list(protocols)
    return {dst: audit_destination(protocols, dst) for dst in targets}
