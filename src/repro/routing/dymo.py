"""Dynamic MANET On-demand routing (draft-ietf-manet-dymo style).

Paper Section III-B.3.  DYMO keeps AODV's sequence-numbered RREQ/RREP
discovery but simplifies the design and adds **path accumulation**: every
routing message carries the addresses (and sequence numbers) of all nodes
it traversed, so "besides route information about a requested target, a
node will also receive information about all intermediate nodes of a newly
discovered path".  Unlike AODV, only the target answers a RREQ, and link
breakage floods RERRs to *all* nodes in range, each re-flooding when the
report invalidates one of its own routes.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from repro.des.event import Event
from repro.des.timer import PeriodicTimer
from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.routing.base import RoutingProtocol
from repro.routing.table import RouteTable

RREQ = "DYMO_RREQ"
RREP = "DYMO_RREP"
RERR = "DYMO_RERR"
HELLO = "DYMO_HELLO"

_BASE_RM_SIZE = 16  # fixed routing-message part
_PATH_ENTRY_SIZE = 8  # per accumulated (address, seq) pair
HELLO_SIZE = 12


@dataclasses.dataclass(frozen=True)
class DymoConfig:
    """Protocol constants (draft-ietf-manet-dymo-14 defaults, hello per
    Table I)."""

    hello_interval_s: float = 1.0
    allowed_hello_loss: int = 2
    route_timeout_s: float = 5.0
    net_traversal_time_s: float = 2.8
    rreq_retries: int = 2
    buffer_capacity: int = 64
    broadcast_jitter_s: float = 0.01
    msg_hop_limit: int = 20

    @property
    def neighbor_lifetime_s(self) -> float:
        """Link considered broken after this long without a HELLO."""
        return self.allowed_hello_loss * self.hello_interval_s


@dataclasses.dataclass(frozen=True)
class RoutingMessage:
    """Shared RREQ/RREP contents with the accumulated path.

    ``path`` starts with the originator and gains one ``(address, seq)``
    entry per forwarding hop; a handler thus learns a route to *every*
    listed node, with hop counts given by list position.
    """

    msg_id: int
    orig: int
    orig_seq: int
    target: int
    target_seq: int  # 0 = unknown (RREQ); the target's seq (RREP)
    path: Tuple[Tuple[int, int], ...]


@dataclasses.dataclass(frozen=True)
class RerrHeader:
    """Unreachable destinations announced after a link break."""

    unreachable: Tuple[Tuple[int, int], ...]


class _Discovery:
    """Pending route discovery for one target."""

    __slots__ = ("retries", "timer")

    def __init__(self, timer: Event) -> None:
        self.retries = 0
        self.timer = timer


def _rm_size(header: RoutingMessage) -> int:
    return _BASE_RM_SIZE + _PATH_ENTRY_SIZE * len(header.path)


class Dymo(RoutingProtocol):
    """One node's DYMO agent."""

    name = "DYMO"

    def __init__(
        self,
        node: "Node",
        rng: Optional[np.random.Generator] = None,
        config: Optional[DymoConfig] = None,
    ) -> None:
        super().__init__(node, rng)
        self.config = config if config is not None else DymoConfig()
        self.table = RouteTable()
        self._seq = 0
        self._msg_id = 0
        self._seen: Dict[Tuple[int, int], float] = {}
        self._buffer: Dict[int, Deque[Tuple[Packet, float]]] = (
            collections.defaultdict(collections.deque)
        )
        self._pending: Dict[int, _Discovery] = {}
        self._neighbors: Dict[int, float] = {}
        self._hello_timer: Optional[PeriodicTimer] = None
        self._maintenance_timer: Optional[PeriodicTimer] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Arm the HELLO beacon and maintenance sweep."""
        cfg = self.config
        self._hello_timer = PeriodicTimer(
            self.sim,
            cfg.hello_interval_s,
            self._send_hello,
            jitter=cfg.hello_interval_s * 0.1,
            rng=self.rng,
        )
        self._hello_timer.start()
        self._maintenance_timer = PeriodicTimer(
            self.sim, cfg.hello_interval_s, self._maintenance, rng=self.rng
        )
        self._maintenance_timer.start()

    # -- introspection ----------------------------------------------------------

    def next_hop_for(self, dst: int):
        entry = self.table.lookup(dst, self.sim.now)
        return entry.next_hop if entry is not None else None

    def reset_state(self) -> None:
        """Crash-wipe: forget routes, neighbours and pending discoveries.

        ``_seq``/``_msg_id`` survive so post-recovery routing messages
        are never mistaken for stale ones.
        """
        for discovery in self._pending.values():
            discovery.timer.cancel()
        self._pending.clear()
        for queue in self._buffer.values():
            for packet, _deadline in queue:
                self.node.drop(packet, "node_down")
        self._buffer.clear()
        self.table = RouteTable()
        self._seen.clear()
        self._neighbors.clear()

    # -- data path --------------------------------------------------------------

    def route_output(self, packet: Packet) -> None:
        entry = self.table.lookup(packet.dst, self.sim.now)
        if entry is not None:
            self.table.refresh(
                packet.dst, self.config.route_timeout_s, self.sim.now
            )
            self.node.send_via(packet, entry.next_hop)
            return
        self._enqueue_for_discovery(packet)

    def forward_data(self, packet: Packet, prev_hop: int) -> None:
        if packet.ttl <= 1:
            self.node.drop(packet, "ttl_expired")
            return
        now = self.sim.now
        entry = self.table.lookup(packet.dst, now)
        if entry is None:
            self.node.drop(packet, "no_route")
            self._originate_rerr([(packet.dst, self._known_seq(packet.dst))])
            return
        self.table.refresh(packet.dst, self.config.route_timeout_s, now)
        self.table.refresh(packet.src, self.config.route_timeout_s, now)
        self.node.send_via(packet.copy_for_forwarding(), entry.next_hop)

    # -- control path --------------------------------------------------------------

    def recv_control(self, packet: Packet, prev_hop: int) -> None:
        if packet.kind == RREQ:
            self._recv_rreq(packet, prev_hop)
        elif packet.kind == RREP:
            self._recv_rrep(packet, prev_hop)
        elif packet.kind == RERR:
            self._recv_rerr(packet, prev_hop)
        elif packet.kind == HELLO:
            self._recv_hello(packet, prev_hop)

    def on_link_failure(self, packet: Packet, next_hop: int) -> None:
        self._handle_link_break(next_hop)
        if packet.is_data:
            self._enqueue_for_discovery(packet)

    # -- discovery ------------------------------------------------------------------

    def _enqueue_for_discovery(self, packet: Packet) -> None:
        cfg = self.config
        queue = self._buffer[packet.dst]
        if len(queue) >= cfg.buffer_capacity:
            dropped, _ = queue.popleft()
            self.node.drop(dropped, "buffer_overflow")
        queue.append((packet, self.sim.now + 2 * cfg.net_traversal_time_s))
        if packet.dst not in self._pending:
            self._send_rreq(packet.dst)

    def _send_rreq(self, target: int) -> None:
        cfg = self.config
        self._msg_id += 1
        self._seq += 1
        header = RoutingMessage(
            msg_id=self._msg_id,
            orig=self.address,
            orig_seq=self._seq,
            target=target,
            target_seq=self._known_seq(target),
            path=((self.address, self._seq),),
        )
        self._seen[(self.address, self._msg_id)] = (
            self.sim.now + 2 * cfg.net_traversal_time_s
        )
        self.send_control(
            RREQ,
            header,
            _rm_size(header),
            BROADCAST,
            ttl=cfg.msg_hop_limit,
            jitter_s=cfg.broadcast_jitter_s,
        )
        discovery = self._pending.get(target)
        timeout = cfg.net_traversal_time_s * (
            2 ** (discovery.retries if discovery else 0)
        )
        timer = self.sim.schedule(timeout, self._discovery_timeout, target)
        if discovery is None:
            self._pending[target] = _Discovery(timer)
        else:
            discovery.timer = timer

    def _discovery_timeout(self, target: int) -> None:
        discovery = self._pending.get(target)
        if discovery is None:
            return
        if discovery.retries < self.config.rreq_retries:
            discovery.retries += 1
            self._send_rreq(target)
            return
        del self._pending[target]
        for packet, _deadline in self._buffer.pop(target, ()):
            self.node.drop(packet, "no_route")

    def _flush_buffer(self, target: int) -> None:
        discovery = self._pending.pop(target, None)
        if discovery is not None:
            discovery.timer.cancel()
        now = self.sim.now
        for packet, deadline in self._buffer.pop(target, ()):
            if deadline <= now:
                self.node.drop(packet, "buffer_timeout")
                continue
            entry = self.table.lookup(target, now)
            if entry is None:
                self.node.drop(packet, "no_route")
                continue
            self.node.send_via(packet, entry.next_hop)

    # -- message handlers ---------------------------------------------------------------

    def _install_path(
        self, header: RoutingMessage, prev_hop: int
    ) -> None:
        """Path accumulation pay-off: learn a route to every listed node.

        The last path entry is one hop away (it was the forwarder we heard),
        the first (the originator) is ``len(path)`` hops away.
        """
        now = self.sim.now
        total = len(header.path)
        for index, (addr, seq) in enumerate(header.path):
            if addr == self.address:
                continue
            hops = total - index
            self.table.update(
                addr, prev_hop, hops, seq, self.config.route_timeout_s, now
            )

    def _recv_rreq(self, packet: Packet, prev_hop: int) -> None:
        cfg = self.config
        header: RoutingMessage = packet.header
        key = (header.orig, header.msg_id)
        if key in self._seen:
            return
        self._seen[key] = self.sim.now + 2 * cfg.net_traversal_time_s
        self._note_neighbor(prev_hop)
        if header.orig == self.address:
            return
        self._install_path(header, prev_hop)
        if header.target == self.address:
            # Only the target replies (no intermediate RREPs in DYMO).
            self._seq = max(self._seq, header.target_seq) + 1
            self._msg_id += 1
            reply = RoutingMessage(
                msg_id=self._msg_id,
                orig=self.address,
                orig_seq=self._seq,
                target=header.orig,
                target_seq=header.orig_seq,
                path=((self.address, self._seq),),
            )
            self._send_rrep(reply)
            return
        if packet.ttl > 1:
            forwarded = dataclasses.replace(
                header, path=header.path + ((self.address, self._seq),)
            )
            self.send_control(
                RREQ,
                forwarded,
                _rm_size(forwarded),
                BROADCAST,
                ttl=packet.ttl - 1,
                jitter_s=cfg.broadcast_jitter_s,
            )

    def _send_rrep(self, header: RoutingMessage) -> None:
        entry = self.table.lookup(header.target, self.sim.now)
        if entry is None:
            return
        self.send_control(RREP, header, _rm_size(header), entry.next_hop)

    def _recv_rrep(self, packet: Packet, prev_hop: int) -> None:
        header: RoutingMessage = packet.header
        key = (header.orig, header.msg_id)
        if key in self._seen:
            return
        self._seen[key] = self.sim.now + 2 * self.config.net_traversal_time_s
        self._note_neighbor(prev_hop)
        self._install_path(header, prev_hop)
        if header.target == self.address:
            # Discovery complete: the RREP's originator is our target.
            self._flush_buffer(header.orig)
            return
        forwarded = dataclasses.replace(
            header, path=header.path + ((self.address, self._seq),)
        )
        self._send_rrep(forwarded)

    def _recv_rerr(self, packet: Packet, prev_hop: int) -> None:
        header: RerrHeader = packet.header
        invalidated = []
        for dst, seq in header.unreachable:
            entry = self.table.get(dst)
            if (
                entry is not None
                and entry.valid
                and entry.next_hop == prev_hop
            ):
                entry.valid = False
                entry.seq = max(entry.seq, seq)
                invalidated.append((dst, entry.seq))
        if invalidated:
            # "Effectively flooding information about a link breakage
            # through the MANET" (paper Section III-B.3).
            self._originate_rerr(invalidated)

    def _recv_hello(self, packet: Packet, prev_hop: int) -> None:
        header: RoutingMessage = packet.header
        self._note_neighbor(prev_hop)
        self.table.update(
            prev_hop,
            prev_hop,
            1,
            header.orig_seq,
            self.config.neighbor_lifetime_s + self.config.hello_interval_s,
            self.sim.now,
        )

    # -- maintenance --------------------------------------------------------------------

    def _send_hello(self) -> None:
        self._seq += 1
        self._msg_id += 1
        header = RoutingMessage(
            msg_id=self._msg_id,
            orig=self.address,
            orig_seq=self._seq,
            target=BROADCAST,
            target_seq=0,
            path=((self.address, self._seq),),
        )
        self.send_control(HELLO, header, HELLO_SIZE, BROADCAST)

    def _maintenance(self) -> None:
        now = self.sim.now
        expired = [
            nbr
            for nbr, last in self._neighbors.items()
            if now - last > self.config.neighbor_lifetime_s
        ]
        for nbr in expired:
            del self._neighbors[nbr]
            self._handle_link_break(nbr)
        self._seen = {
            key: until for key, until in self._seen.items() if until > now
        }

    def _note_neighbor(self, nbr: int) -> None:
        self._neighbors[nbr] = self.sim.now

    def _handle_link_break(self, next_hop: int) -> None:
        self._neighbors.pop(next_hop, None)
        broken = self.table.invalidate_via(next_hop)
        self.node.mac.flush_next_hop(next_hop)
        if broken:
            self._originate_rerr([(e.dst, e.seq) for e in broken])

    def _originate_rerr(self, unreachable) -> None:
        header = RerrHeader(unreachable=tuple(unreachable))
        size = 4 + 8 * len(header.unreachable)
        self.send_control(
            RERR,
            header,
            size,
            BROADCAST,
            jitter_s=self.config.broadcast_jitter_s,
        )

    def _known_seq(self, dst: int) -> int:
        entry = self.table.get(dst)
        return entry.seq if entry is not None else 0
