"""Ad-hoc routing protocols: AODV, OLSR, DYMO (plus DSDV and flooding).

The three protocols the paper evaluates (Section III-B) are implemented
against a common interface so the evaluation harness can swap them by name:

* :class:`Aodv` — reactive, RFC 3561-style route discovery.
* :class:`Olsr` — proactive link-state with MPR flooding (RFC 3626 core),
  optionally using the ETX/LQ metric extension.
* :class:`Dymo` — reactive with path accumulation
  (draft-ietf-manet-dymo style).
* :class:`Dsdv` and :class:`Flooding` — extension baselines.

Name-to-class dispatch goes through the ``"routing"`` namespace of
:mod:`repro.core.registry`; a third-party protocol registers with
``@register("routing", "GPSR")`` and is immediately selectable by
``Scenario(protocol=...)``, :func:`make_protocol` and the CLI.
``PROTOCOLS`` remains as a read-only mapping alias over that namespace.
"""

from repro.core.registry import RegistryView, register, resolve
from repro.routing.audit import RoutingAudit, audit_all, audit_destination, next_hop_map
from repro.routing.base import RoutingProtocol
from repro.routing.table import RouteEntry, RouteTable
from repro.routing.aodv import Aodv
from repro.routing.olsr import Olsr
from repro.routing.dymo import Dymo
from repro.routing.dsdv import Dsdv
from repro.routing.flooding import Flooding

register("routing", "AODV")(Aodv)
register("routing", "OLSR")(Olsr)
register("routing", "DYMO")(Dymo)
register("routing", "DSDV")(Dsdv)
register("routing", "FLOODING")(Flooding)

#: Read-only mapping alias over the registry namespace (kept for callers
#: that iterate or index protocols by name; late registrations appear here
#: automatically).
PROTOCOLS = RegistryView("routing")


def make_protocol(name: str, node, rng, **kwargs) -> RoutingProtocol:
    """Instantiate a protocol by its (case-insensitive) registered name.

    Thin wrapper over ``registry.resolve("routing", name)``; an unknown
    name raises :class:`~repro.util.errors.ConfigError` listing the live
    set of registered protocols.
    """
    return resolve("routing", name)(node, rng, **kwargs)


__all__ = [
    "RoutingProtocol",
    "RouteTable",
    "RouteEntry",
    "RoutingAudit",
    "audit_all",
    "audit_destination",
    "next_hop_map",
    "Aodv",
    "Olsr",
    "Dymo",
    "Dsdv",
    "Flooding",
    "PROTOCOLS",
    "make_protocol",
]
