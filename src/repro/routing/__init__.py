"""Ad-hoc routing protocols: AODV, OLSR, DYMO (plus DSDV and flooding).

The three protocols the paper evaluates (Section III-B) are implemented
against a common interface so the evaluation harness can swap them by name:

* :class:`Aodv` — reactive, RFC 3561-style route discovery.
* :class:`Olsr` — proactive link-state with MPR flooding (RFC 3626 core),
  optionally using the ETX/LQ metric extension.
* :class:`Dymo` — reactive with path accumulation
  (draft-ietf-manet-dymo style).
* :class:`Dsdv` and :class:`Flooding` — extension baselines.
"""

from repro.routing.audit import RoutingAudit, audit_all, audit_destination, next_hop_map
from repro.routing.base import RoutingProtocol
from repro.routing.table import RouteEntry, RouteTable
from repro.routing.aodv import Aodv
from repro.routing.olsr import Olsr
from repro.routing.dymo import Dymo
from repro.routing.dsdv import Dsdv
from repro.routing.flooding import Flooding

PROTOCOLS = {
    "AODV": Aodv,
    "OLSR": Olsr,
    "DYMO": Dymo,
    "DSDV": Dsdv,
    "FLOODING": Flooding,
}


def make_protocol(name: str, node, rng, **kwargs) -> RoutingProtocol:
    """Instantiate a protocol by its (case-insensitive) name."""
    from repro.util.errors import ConfigError

    key = name.upper()
    if key not in PROTOCOLS:
        raise ConfigError(
            f"unknown routing protocol {name!r}; known: {sorted(PROTOCOLS)}"
        )
    return PROTOCOLS[key](node, rng, **kwargs)


__all__ = [
    "RoutingProtocol",
    "RouteTable",
    "RouteEntry",
    "RoutingAudit",
    "audit_all",
    "audit_destination",
    "next_hop_map",
    "Aodv",
    "Olsr",
    "Dymo",
    "Dsdv",
    "Flooding",
    "PROTOCOLS",
    "make_protocol",
]
