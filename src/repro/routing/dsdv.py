"""Destination-Sequenced Distance Vector routing (extension baseline).

The paper introduces AODV as "an improvement of DSDV to on-demand scheme"
(Section III-B.2); having the ancestor protocol available makes that
comparison runnable.  Classic DSDV: every node periodically broadcasts its
full routing table with per-destination sequence numbers; even sequence
numbers originate at the destination, odd ones mark broken routes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro.des.timer import PeriodicTimer
from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.routing.base import RoutingProtocol

UPDATE = "DSDV_UPDATE"


@dataclasses.dataclass(frozen=True)
class DsdvConfig:
    """Protocol constants."""

    update_interval_s: float = 5.0
    neighbor_hold_s: float = 12.0
    broadcast_jitter_s: float = 0.1


@dataclasses.dataclass(frozen=True)
class UpdateHeader:
    """A full-table dump: (dst, seq, hops) triples."""

    entries: Tuple[Tuple[int, int, int], ...]


@dataclasses.dataclass
class _DsdvRoute:
    next_hop: int
    hops: int
    seq: int
    installed_at: float


def _update_size(header: UpdateHeader) -> int:
    return 8 + 12 * len(header.entries)


class Dsdv(RoutingProtocol):
    """One node's DSDV agent."""

    name = "DSDV"

    def __init__(
        self,
        node: "Node",
        rng: Optional[np.random.Generator] = None,
        config: Optional[DsdvConfig] = None,
    ) -> None:
        super().__init__(node, rng)
        self.config = config if config is not None else DsdvConfig()
        self._seq = 0  # own sequence number (always even when advertised)
        self._routes: Dict[int, _DsdvRoute] = {}
        self._last_heard: Dict[int, float] = {}
        self._update_timer: Optional[PeriodicTimer] = None

    def start(self) -> None:
        """Arm the periodic full-table broadcast."""
        self._update_timer = PeriodicTimer(
            self.sim,
            self.config.update_interval_s,
            self._broadcast_update,
            jitter=self.config.update_interval_s * 0.1,
            rng=self.rng,
        )
        self._update_timer.start()
        # First advertisement goes out immediately (jittered) so the
        # network converges before one full interval elapses.
        self.sim.schedule(
            float(self.rng.uniform(0.0, self.config.broadcast_jitter_s)),
            self._broadcast_update,
        )

    # -- introspection ----------------------------------------------------------

    def next_hop_for(self, dst: int):
        route = self._valid_route(dst)
        return route.next_hop if route is not None else None

    # -- data path ------------------------------------------------------------

    def route_output(self, packet: Packet) -> None:
        route = self._valid_route(packet.dst)
        if route is None:
            self.node.drop(packet, "no_route")
            return
        self.node.send_via(packet, route.next_hop)

    def forward_data(self, packet: Packet, prev_hop: int) -> None:
        if packet.ttl <= 1:
            self.node.drop(packet, "ttl_expired")
            return
        route = self._valid_route(packet.dst)
        if route is None:
            self.node.drop(packet, "no_route")
            return
        self.node.send_via(packet.copy_for_forwarding(), route.next_hop)

    # -- control path ------------------------------------------------------------

    def recv_control(self, packet: Packet, prev_hop: int) -> None:
        if packet.kind != UPDATE:
            return
        header: UpdateHeader = packet.header
        now = self.sim.now
        self._last_heard[prev_hop] = now
        changed = False
        for dst, seq, hops in header.entries:
            if dst == self.address:
                continue
            new_hops = hops + 1
            current = self._routes.get(dst)
            broken = seq % 2 == 1
            if broken:
                if (
                    current is not None
                    and current.next_hop == prev_hop
                    and seq > current.seq
                ):
                    current.seq = seq
                    current.hops = 1 << 16  # infinity
                    changed = True
                continue
            if (
                current is None
                or seq > current.seq
                or (seq == current.seq and new_hops < current.hops)
            ):
                self._routes[dst] = _DsdvRoute(prev_hop, new_hops, seq, now)
                changed = True
        if changed:
            pass  # full-dump DSDV relies on the periodic advertisement

    def on_link_failure(self, packet: Packet, next_hop: int) -> None:
        self._break_via(next_hop)
        if packet.is_data:
            self.node.drop(packet, "no_route")

    # -- internals ------------------------------------------------------------------

    def _valid_route(self, dst: int) -> Optional[_DsdvRoute]:
        self._expire_neighbors()
        route = self._routes.get(dst)
        if route is None or route.hops >= 1 << 16:
            return None
        return route

    def _broadcast_update(self) -> None:
        self._expire_neighbors()
        self._seq += 2
        entries = [(self.address, self._seq, 0)]
        for dst, route in self._routes.items():
            if route.hops < 1 << 16:
                entries.append((dst, route.seq, route.hops))
            else:
                entries.append((dst, route.seq, 1 << 16))
        header = UpdateHeader(entries=tuple(entries))
        self.send_control(
            UPDATE,
            header,
            _update_size(header),
            BROADCAST,
            jitter_s=self.config.broadcast_jitter_s,
        )

    def _expire_neighbors(self) -> None:
        now = self.sim.now
        expired = [
            nbr
            for nbr, last in self._last_heard.items()
            if now - last > self.config.neighbor_hold_s
        ]
        for nbr in expired:
            del self._last_heard[nbr]
            self._break_via(nbr)

    def _break_via(self, next_hop: int) -> None:
        for route in self._routes.values():
            if route.next_hop == next_hop and route.hops < 1 << 16:
                route.hops = 1 << 16
                route.seq += 1  # odd: broken
        self.node.mac.flush_next_hop(next_hop)
