"""Ad-hoc On-demand Distance Vector routing (RFC 3561 style).

Paper Section III-B.2: routes are created only when needed.  A source
floods a Route Request (RREQ); intermediate nodes learn the reverse path;
the destination — or an intermediate node with a fresh-enough route —
returns a Route Reply (RREP) along it.  Periodic HELLOs detect link
breakage, which triggers Route Error (RERR) propagation.  Data packets
awaiting discovery wait in a per-destination buffer.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from repro.des.event import Event
from repro.des.timer import PeriodicTimer
from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.routing.base import RoutingProtocol
from repro.routing.table import RouteTable

RREQ = "AODV_RREQ"
RREP = "AODV_RREP"
RERR = "AODV_RERR"
HELLO = "AODV_HELLO"

#: Network-layer control sizes in bytes (RFC 3561 message formats).
RREQ_SIZE = 24
RREP_SIZE = 20
HELLO_SIZE = 20


@dataclasses.dataclass(frozen=True)
class AodvConfig:
    """Protocol constants (RFC 3561 defaults; hello per paper Table I).

    ``expanding_ring`` enables the RFC 3561 s6.4 expanding-ring search:
    RREQs start with a small TTL (``ttl_start``) and widen by
    ``ttl_increment`` per attempt until ``ttl_threshold``, after which
    full-diameter floods (with ``rreq_retries`` retries) take over.  It
    trades discovery latency for flood containment; disabled by default to
    match the plain flooding the paper's era of ns-2 AODV used.
    """

    hello_interval_s: float = 1.0
    allowed_hello_loss: int = 2
    active_route_timeout_s: float = 3.0
    my_route_timeout_s: float = 6.0
    net_diameter: int = 35
    node_traversal_time_s: float = 0.04
    rreq_retries: int = 2
    buffer_capacity: int = 64
    broadcast_jitter_s: float = 0.01
    expanding_ring: bool = False
    ttl_start: int = 1
    ttl_increment: int = 2
    ttl_threshold: int = 7

    @property
    def net_traversal_time_s(self) -> float:
        """Worst-case round trip across the network (RFC 3561 s10)."""
        return 2.0 * self.node_traversal_time_s * self.net_diameter

    @property
    def path_discovery_time_s(self) -> float:
        """How long discovery state (and buffered data) stays alive."""
        return 2.0 * self.net_traversal_time_s

    @property
    def neighbor_lifetime_s(self) -> float:
        """Link considered broken after this long without a HELLO."""
        return self.allowed_hello_loss * self.hello_interval_s

    @property
    def ring_attempts(self) -> int:
        """How many limited-TTL attempts the expanding ring makes."""
        if not self.expanding_ring:
            return 0
        count = 0
        ttl = self.ttl_start
        while ttl <= self.ttl_threshold:
            count += 1
            ttl += self.ttl_increment
        return count

    def rreq_ttl(self, attempt: int) -> int:
        """TTL of the RREQ for the given (0-based) discovery attempt."""
        if not self.expanding_ring:
            return self.net_diameter
        ttl = self.ttl_start + self.ttl_increment * attempt
        return ttl if ttl <= self.ttl_threshold else self.net_diameter

    def rreq_timeout_s(self, attempt: int) -> float:
        """How long to wait for an RREP after the given attempt."""
        ttl = self.rreq_ttl(attempt)
        if ttl < self.net_diameter:
            # RFC 3561 s6.4: ring traversal time for a limited flood.
            return 2.0 * self.node_traversal_time_s * (ttl + 2)
        full_attempt = max(attempt - self.ring_attempts, 0)
        return self.net_traversal_time_s * (2**full_attempt)

    @property
    def max_discovery_attempts(self) -> int:
        """Ring attempts plus the full-diameter attempt and its retries."""
        return self.ring_attempts + self.rreq_retries + 1


@dataclasses.dataclass(frozen=True)
class RreqHeader:
    """Route Request contents."""

    rreq_id: int
    orig: int
    orig_seq: int
    dst: int
    dst_seq: int  # 0 = unknown
    hops: int


@dataclasses.dataclass(frozen=True)
class RrepHeader:
    """Route Reply (and HELLO) contents."""

    orig: int  # who the reply travels to (the discoverer)
    dst: int  # the discovered destination
    dst_seq: int
    hops: int
    lifetime_s: float


@dataclasses.dataclass(frozen=True)
class RerrHeader:
    """Route Error contents: destinations now unreachable via the sender."""

    unreachable: Tuple[Tuple[int, int], ...]  # (dst, dst_seq) pairs


class _Discovery:
    """Pending route discovery for one destination."""

    __slots__ = ("retries", "timer")

    def __init__(self, timer: Event) -> None:
        self.retries = 0
        self.timer = timer


class Aodv(RoutingProtocol):
    """One node's AODV agent."""

    name = "AODV"

    def __init__(
        self,
        node: "Node",
        rng: Optional[np.random.Generator] = None,
        config: Optional[AodvConfig] = None,
    ) -> None:
        super().__init__(node, rng)
        self.config = config if config is not None else AodvConfig()
        self.table = RouteTable()
        self._seq = 0
        self._rreq_id = 0
        self._seen_rreqs: Dict[Tuple[int, int], float] = {}
        self._buffer: Dict[int, Deque[Tuple[Packet, float]]] = (
            collections.defaultdict(collections.deque)
        )
        self._pending: Dict[int, _Discovery] = {}
        self._neighbors: Dict[int, float] = {}  # nbr -> last heard
        self._hello_timer: Optional[PeriodicTimer] = None
        self._maintenance_timer: Optional[PeriodicTimer] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Arm the HELLO beacon and the maintenance sweep."""
        cfg = self.config
        self._hello_timer = PeriodicTimer(
            self.sim,
            cfg.hello_interval_s,
            self._send_hello,
            jitter=cfg.hello_interval_s * 0.1,
            rng=self.rng,
        )
        self._hello_timer.start()
        self._maintenance_timer = PeriodicTimer(
            self.sim, cfg.hello_interval_s, self._maintenance, rng=self.rng
        )
        self._maintenance_timer.start()

    def reset_state(self) -> None:
        """Crash-wipe: forget routes, neighbours and pending discoveries.

        ``_seq``/``_rreq_id`` survive (RFC 3561 wants sequence numbers
        monotone across reboots so stale routes lose to fresh ones).
        """
        for discovery in self._pending.values():
            discovery.timer.cancel()
        self._pending.clear()
        for queue in self._buffer.values():
            for packet, _deadline in queue:
                self.node.drop(packet, "node_down")
        self._buffer.clear()
        self.table = RouteTable()
        self._seen_rreqs.clear()
        self._neighbors.clear()

    # -- introspection ---------------------------------------------------------

    def next_hop_for(self, dst: int):
        entry = self.table.lookup(dst, self.sim.now)
        return entry.next_hop if entry is not None else None

    # -- data path -------------------------------------------------------------

    def route_output(self, packet: Packet) -> None:
        now = self.sim.now
        entry = self.table.lookup(packet.dst, now)
        if entry is not None:
            self._refresh_active(packet.dst, entry.next_hop)
            self.node.send_via(packet, entry.next_hop)
            return
        self._enqueue_for_discovery(packet)

    def forward_data(self, packet: Packet, prev_hop: int) -> None:
        if packet.ttl <= 1:
            self.node.drop(packet, "ttl_expired")
            return
        now = self.sim.now
        entry = self.table.lookup(packet.dst, now)
        if entry is None:
            # RFC 3561 s6.11: data for an unknown destination at an
            # intermediate node triggers an RERR.
            self.node.drop(packet, "no_route")
            self._originate_rerr([(packet.dst, self._dest_seq(packet.dst))])
            return
        self._refresh_active(packet.dst, entry.next_hop)
        self.table.refresh(packet.src, self.config.active_route_timeout_s, now)
        entry.precursors.add(prev_hop)
        self.node.send_via(packet.copy_for_forwarding(), entry.next_hop)

    # -- control path -------------------------------------------------------------

    def recv_control(self, packet: Packet, prev_hop: int) -> None:
        if packet.kind == RREQ:
            self._recv_rreq(packet, prev_hop)
        elif packet.kind == RREP:
            self._recv_rrep(packet, prev_hop)
        elif packet.kind == RERR:
            self._recv_rerr(packet, prev_hop)
        elif packet.kind == HELLO:
            self._recv_hello(packet, prev_hop)

    def on_link_failure(self, packet: Packet, next_hop: int) -> None:
        self._handle_link_break(next_hop)
        if packet.is_data:
            # Salvage the packet through a fresh discovery.
            self._enqueue_for_discovery(packet)

    # -- discovery ----------------------------------------------------------------

    def _enqueue_for_discovery(self, packet: Packet) -> None:
        cfg = self.config
        queue = self._buffer[packet.dst]
        if len(queue) >= cfg.buffer_capacity:
            dropped, _ = queue.popleft()
            self.node.drop(dropped, "buffer_overflow")
        queue.append((packet, self.sim.now + cfg.path_discovery_time_s))
        if packet.dst not in self._pending:
            self._send_rreq(packet.dst)

    def _send_rreq(self, dst: int) -> None:
        cfg = self.config
        discovery = self._pending.get(dst)
        attempt = discovery.retries if discovery else 0
        self._rreq_id += 1
        self._seq += 1
        header = RreqHeader(
            rreq_id=self._rreq_id,
            orig=self.address,
            orig_seq=self._seq,
            dst=dst,
            dst_seq=self._dest_seq(dst),
            hops=0,
        )
        # Mark our own RREQ as seen so neighbours echoing it back are inert.
        self._seen_rreqs[(self.address, self._rreq_id)] = (
            self.sim.now + cfg.path_discovery_time_s
        )
        self.send_control(
            RREQ,
            header,
            RREQ_SIZE,
            BROADCAST,
            ttl=cfg.rreq_ttl(attempt),
            jitter_s=cfg.broadcast_jitter_s,
        )
        timer = self.sim.schedule(
            cfg.rreq_timeout_s(attempt), self._discovery_timeout, dst
        )
        if discovery is None:
            self._pending[dst] = _Discovery(timer)
        else:
            discovery.timer = timer

    def _discovery_timeout(self, dst: int) -> None:
        discovery = self._pending.get(dst)
        if discovery is None:
            return
        if discovery.retries + 1 < self.config.max_discovery_attempts:
            discovery.retries += 1
            self._send_rreq(dst)
            return
        del self._pending[dst]
        for packet, _deadline in self._buffer.pop(dst, ()):
            self.node.drop(packet, "no_route")

    def _flush_buffer(self, dst: int) -> None:
        discovery = self._pending.pop(dst, None)
        if discovery is not None:
            discovery.timer.cancel()
        now = self.sim.now
        for packet, deadline in self._buffer.pop(dst, ()):
            if deadline <= now:
                self.node.drop(packet, "buffer_timeout")
                continue
            entry = self.table.lookup(dst, now)
            if entry is None:
                self.node.drop(packet, "no_route")
                continue
            self.node.send_via(packet, entry.next_hop)

    # -- message handlers -------------------------------------------------------------

    def _recv_rreq(self, packet: Packet, prev_hop: int) -> None:
        cfg = self.config
        header: RreqHeader = packet.header
        key = (header.orig, header.rreq_id)
        if key in self._seen_rreqs:
            return
        self._seen_rreqs[key] = self.sim.now + cfg.path_discovery_time_s
        now = self.sim.now
        self._note_neighbor(prev_hop)
        if header.orig == self.address:
            return
        # Reverse route towards the originator.
        self.table.update(
            header.orig,
            prev_hop,
            header.hops + 1,
            header.orig_seq,
            cfg.net_traversal_time_s * 2,
            now,
        )
        if header.dst == self.address:
            # RFC 3561 s6.6.1: the destination bumps its own sequence
            # number to at least the one the RREQ asked about.
            self._seq = max(self._seq, header.dst_seq)
            self._send_rrep(
                orig=header.orig,
                dst=self.address,
                dst_seq=self._seq,
                hops=0,
                lifetime=cfg.my_route_timeout_s,
            )
            return
        entry = self.table.lookup(header.dst, now)
        if entry is not None and entry.seq >= header.dst_seq:
            # Intermediate reply from a fresh-enough cached route.
            entry.precursors.add(prev_hop)
            self._send_rrep(
                orig=header.orig,
                dst=header.dst,
                dst_seq=entry.seq,
                hops=entry.hops,
                lifetime=max(entry.expires_at - now, 0.0),
            )
            return
        if packet.ttl > 1:
            forwarded = dataclasses.replace(header, hops=header.hops + 1)
            self.send_control(
                RREQ,
                forwarded,
                RREQ_SIZE,
                BROADCAST,
                ttl=packet.ttl - 1,
                jitter_s=cfg.broadcast_jitter_s,
            )

    def _send_rrep(
        self, orig: int, dst: int, dst_seq: int, hops: int, lifetime: float
    ) -> None:
        entry = self.table.lookup(orig, self.sim.now)
        if entry is None:
            return  # reverse route evaporated; discovery will retry
        header = RrepHeader(orig, dst, dst_seq, hops, lifetime)
        self.send_control(RREP, header, RREP_SIZE, entry.next_hop)

    def _recv_rrep(self, packet: Packet, prev_hop: int) -> None:
        cfg = self.config
        header: RrepHeader = packet.header
        now = self.sim.now
        self._note_neighbor(prev_hop)
        # Forward route to the replied destination.
        self.table.update(
            header.dst,
            prev_hop,
            header.hops + 1,
            header.dst_seq,
            header.lifetime_s if header.lifetime_s > 0 else cfg.active_route_timeout_s,
            now,
        )
        if header.orig == self.address:
            self._flush_buffer(header.dst)
            return
        reverse = self.table.lookup(header.orig, now)
        if reverse is None:
            self.node.drop(packet, "no_reverse_route")
            return
        forward_entry = self.table.get(header.dst)
        if forward_entry is not None:
            forward_entry.precursors.add(reverse.next_hop)
        forwarded = dataclasses.replace(header, hops=header.hops + 1)
        self.send_control(RREP, forwarded, RREP_SIZE, reverse.next_hop)

    def _recv_rerr(self, packet: Packet, prev_hop: int) -> None:
        header: RerrHeader = packet.header
        invalidated = []
        for dst, seq in header.unreachable:
            entry = self.table.get(dst)
            if (
                entry is not None
                and entry.valid
                and entry.next_hop == prev_hop
            ):
                entry.valid = False
                entry.seq = max(entry.seq, seq)
                invalidated.append((dst, entry.seq))
        if invalidated:
            self._originate_rerr(invalidated)

    def _recv_hello(self, packet: Packet, prev_hop: int) -> None:
        header: RrepHeader = packet.header
        self._note_neighbor(prev_hop)
        self.table.update(
            prev_hop,
            prev_hop,
            1,
            header.dst_seq,
            self.config.neighbor_lifetime_s + self.config.hello_interval_s,
            self.sim.now,
        )

    # -- maintenance -------------------------------------------------------------

    def _send_hello(self) -> None:
        self._seq += 1
        header = RrepHeader(
            orig=BROADCAST,
            dst=self.address,
            dst_seq=self._seq,
            hops=0,
            lifetime_s=self.config.neighbor_lifetime_s,
        )
        self.send_control(HELLO, header, HELLO_SIZE, BROADCAST)

    def _maintenance(self) -> None:
        now = self.sim.now
        expired = [
            nbr
            for nbr, last in self._neighbors.items()
            if now - last > self.config.neighbor_lifetime_s
        ]
        for nbr in expired:
            del self._neighbors[nbr]
            self._handle_link_break(nbr)
        self._seen_rreqs = {
            key: until
            for key, until in self._seen_rreqs.items()
            if until > now
        }

    def _note_neighbor(self, nbr: int) -> None:
        self._neighbors[nbr] = self.sim.now

    def _handle_link_break(self, next_hop: int) -> None:
        self._neighbors.pop(next_hop, None)
        broken = self.table.invalidate_via(next_hop)
        self.node.mac.flush_next_hop(next_hop)
        if broken:
            self._originate_rerr([(e.dst, e.seq) for e in broken])

    def _originate_rerr(self, unreachable) -> None:
        header = RerrHeader(unreachable=tuple(unreachable))
        size = 4 + 8 * len(header.unreachable)
        self.send_control(
            RERR,
            header,
            size,
            BROADCAST,
            jitter_s=self.config.broadcast_jitter_s,
        )

    def _refresh_active(self, dst: int, next_hop: int) -> None:
        """Using a route keeps it (and the next-hop route) alive."""
        now = self.sim.now
        lifetime = self.config.active_route_timeout_s
        self.table.refresh(dst, lifetime, now)
        self.table.refresh(next_hop, lifetime, now)

    def _dest_seq(self, dst: int) -> int:
        entry = self.table.get(dst)
        return entry.seq if entry is not None else 0
