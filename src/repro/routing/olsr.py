"""Optimized Link State Routing (RFC 3626 core, with the ETX extension).

Paper Section III-B.1: every node periodically emits HELLOs for link
sensing and neighbour discovery; each node picks a minimal Multi-Point
Relay (MPR) set covering its two-hop neighbourhood; Topology Control (TC)
messages carrying the MPR-selector sets are flooded through the MPR
backbone; routing tables are computed by shortest path over the learned
topology.

The LQ/ETX extension the paper describes (``ETX(i) = 1 / (NI(i) x LQI(i))``
over a sampling window) is implemented behind ``OlsrConfig.metric = "etx"``:
HELLOs then carry measured per-link reception ratios, TCs carry link costs,
and Dijkstra minimises the ETX sum instead of the hop count.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Deque, Dict, Optional, Set, Tuple

import collections

import numpy as np

from repro.des.timer import PeriodicTimer
from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.routing.base import RoutingProtocol

HELLO = "OLSR_HELLO"
TC = "OLSR_TC"
HNA = "OLSR_HNA"

#: Link codes carried in HELLO messages.
SYM = "SYM"
MPR = "MPR"
HEARD = "HEARD"

_ETX_FLOOR = 0.01  # reception-ratio product floor: caps a link's ETX at 100


@dataclasses.dataclass(frozen=True)
class OlsrConfig:
    """Protocol constants (intervals per paper Table I).

    ``gateway_for`` lists *external* destination addresses this node acts
    as a gateway towards; they are advertised through HNA messages, which
    RFC 3626 (and paper Section III-B.1) "disseminate network route
    advertisements in the same way TC messages advertise host routes".
    """

    hello_interval_s: float = 1.0
    tc_interval_s: float = 2.0
    hold_multiplier: float = 3.0
    metric: str = "hop"  # "hop" or "etx"
    etx_window: int = 10  # hellos per sampling window W
    broadcast_jitter_s: float = 0.1
    gateway_for: Tuple[int, ...] = ()
    hna_interval_s: float = 5.0

    def __post_init__(self) -> None:
        if self.metric not in ("hop", "etx"):
            raise ValueError(f"metric must be 'hop' or 'etx', got {self.metric}")
        if self.hna_interval_s <= 0:
            raise ValueError(
                f"hna_interval_s must be > 0, got {self.hna_interval_s}"
            )

    @property
    def neighbor_hold_s(self) -> float:
        """Validity of link-sensing information."""
        return self.hold_multiplier * self.hello_interval_s

    @property
    def topology_hold_s(self) -> float:
        """Validity of TC-learned topology tuples."""
        return self.hold_multiplier * self.tc_interval_s


@dataclasses.dataclass(frozen=True)
class HelloHeader:
    """HELLO contents: who we hear, and (ETX mode) how well."""

    neighbors: Dict[int, str]  # neighbour -> link code
    link_quality: Dict[int, float]  # neighbour -> our reception ratio


@dataclasses.dataclass(frozen=True)
class HnaHeader:
    """HNA contents: external destinations reachable via the originator."""

    orig: int
    seq: int
    networks: Tuple[int, ...]


def _hna_size(header: HnaHeader) -> int:
    return 12 + 8 * len(header.networks)


@dataclasses.dataclass(frozen=True)
class TcHeader:
    """TC contents: the originator's advertised (selector) links."""

    orig: int
    ansn: int
    seq: int
    advertised: Tuple[int, ...]
    costs: Tuple[float, ...]


class _Link:
    """Link-set entry for one neighbour."""

    __slots__ = ("heard_until", "sym_until", "lqi")

    def __init__(self) -> None:
        self.heard_until = 0.0
        self.sym_until = 0.0
        self.lqi = 1.0  # neighbour-reported quality of our transmissions


def _hello_size(header: HelloHeader) -> int:
    return 12 + 5 * len(header.neighbors) + 4 * len(header.link_quality)


def _tc_size(header: TcHeader) -> int:
    return 12 + 8 * len(header.advertised)


class Olsr(RoutingProtocol):
    """One node's OLSR agent."""

    name = "OLSR"

    def __init__(
        self,
        node: "Node",
        rng: Optional[np.random.Generator] = None,
        config: Optional[OlsrConfig] = None,
    ) -> None:
        super().__init__(node, rng)
        self.config = config if config is not None else OlsrConfig()
        self._links: Dict[int, _Link] = {}
        self._two_hop: Dict[Tuple[int, int], Tuple[float, float]] = {}
        self._mprs: Set[int] = set()
        self._mpr_selectors: Dict[int, float] = {}
        self._topology: Dict[Tuple[int, int], Tuple[float, float]] = {}
        self._ansn_seen: Dict[int, int] = {}
        self._dups: Dict[Tuple[int, int], float] = {}
        self._routes: Dict[int, Tuple[int, int]] = {}  # dst -> (next_hop, hops)
        self._hna: Dict[int, Dict[int, float]] = {}  # external -> {gw: until}
        self._dirty = True
        self._hello_rx: Dict[int, Deque[float]] = {}
        self._ansn = 0
        self._msg_seq = 0
        self._hello_timer: Optional[PeriodicTimer] = None
        self._tc_timer: Optional[PeriodicTimer] = None
        self._hna_timer: Optional[PeriodicTimer] = None
        self._maintenance_timer: Optional[PeriodicTimer] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Arm HELLO, TC and maintenance timers."""
        cfg = self.config
        self._hello_timer = PeriodicTimer(
            self.sim,
            cfg.hello_interval_s,
            self._send_hello,
            jitter=cfg.hello_interval_s * 0.1,
            rng=self.rng,
        )
        self._hello_timer.start()
        self._tc_timer = PeriodicTimer(
            self.sim,
            cfg.tc_interval_s,
            self._send_tc,
            jitter=cfg.tc_interval_s * 0.1,
            rng=self.rng,
        )
        self._tc_timer.start()
        if cfg.gateway_for:
            self._hna_timer = PeriodicTimer(
                self.sim,
                cfg.hna_interval_s,
                self._send_hna,
                jitter=cfg.hna_interval_s * 0.1,
                rng=self.rng,
                start_delay=cfg.tc_interval_s,  # after some topology exists
            )
            self._hna_timer.start()
        self._maintenance_timer = PeriodicTimer(
            self.sim, cfg.hello_interval_s, self._maintenance, rng=self.rng
        )
        self._maintenance_timer.start()

    # -- introspection ---------------------------------------------------------

    def next_hop_for(self, dst: int):
        route = self._route_for(dst)
        if route is None:
            route = self._hna_route(dst)
        return route[0] if route is not None else None

    def reset_state(self) -> None:
        """Crash-wipe: forget every learned link, topology and route.

        ``_ansn``/``_msg_seq`` survive so post-recovery TC floods are
        never discarded as stale by nodes holding pre-crash state.
        """
        self._links.clear()
        self._two_hop.clear()
        self._mprs = set()
        self._mpr_selectors.clear()
        self._topology.clear()
        self._ansn_seen.clear()
        self._dups.clear()
        self._routes = {}
        self._hna.clear()
        self._hello_rx.clear()
        self._dirty = True

    # -- data path -------------------------------------------------------------

    def route_output(self, packet: Packet) -> None:
        if packet.dst in self.config.gateway_for:
            # We are the gateway for this external destination.
            self.node.deliver_local(packet, self.address)
            return
        route = self._route_for(packet.dst)
        if route is None:
            route = self._hna_route(packet.dst)
        if route is None:
            # Proactive routing has no discovery to fall back on.
            self.node.drop(packet, "no_route")
            return
        self.node.send_via(packet, route[0])

    def forward_data(self, packet: Packet, prev_hop: int) -> None:
        if packet.dst in self.config.gateway_for:
            self.node.deliver_local(packet, prev_hop)
            return
        if packet.ttl <= 1:
            self.node.drop(packet, "ttl_expired")
            return
        route = self._route_for(packet.dst)
        if route is None:
            route = self._hna_route(packet.dst)
        if route is None:
            self.node.drop(packet, "no_route")
            return
        self.node.send_via(packet.copy_for_forwarding(), route[0])

    # -- control path --------------------------------------------------------------

    def recv_control(self, packet: Packet, prev_hop: int) -> None:
        if packet.kind == HELLO:
            self._recv_hello(packet, prev_hop)
        elif packet.kind == TC:
            self._recv_tc(packet, prev_hop)
        elif packet.kind == HNA:
            self._recv_hna(packet, prev_hop)

    def on_link_failure(self, packet: Packet, next_hop: int) -> None:
        link = self._links.pop(next_hop, None)
        self._hello_rx.pop(next_hop, None)
        self._mpr_selectors.pop(next_hop, None)
        self.node.mac.flush_next_hop(next_hop)
        if link is not None:
            self._dirty = True
        if packet.is_data:
            route = self._route_for(packet.dst)
            if route is not None and route[0] != next_hop:
                self.node.send_via(packet, route[0])
            else:
                self.node.drop(packet, "no_route")

    # -- HELLO ----------------------------------------------------------------------

    def _send_hello(self) -> None:
        now = self.sim.now
        neighbors: Dict[int, str] = {}
        quality: Dict[int, float] = {}
        for nbr, link in self._links.items():
            if link.heard_until <= now:
                continue
            if link.sym_until > now:
                neighbors[nbr] = MPR if nbr in self._mprs else SYM
            else:
                neighbors[nbr] = HEARD
            if self.config.metric == "etx":
                quality[nbr] = self._reception_ratio(nbr)
        header = HelloHeader(neighbors=neighbors, link_quality=quality)
        self.send_control(
            HELLO,
            header,
            _hello_size(header),
            BROADCAST,
            ttl=1,
            jitter_s=self.config.broadcast_jitter_s,
        )

    def _recv_hello(self, packet: Packet, prev_hop: int) -> None:
        cfg = self.config
        now = self.sim.now
        header: HelloHeader = packet.header
        link = self._links.setdefault(prev_hop, _Link())
        link.heard_until = now + cfg.neighbor_hold_s
        self._hello_rx.setdefault(
            prev_hop, collections.deque(maxlen=cfg.etx_window)
        ).append(now)
        me = self.address
        if me in header.neighbors:
            link.sym_until = now + cfg.neighbor_hold_s
            if header.neighbors[me] == MPR:
                self._mpr_selectors[prev_hop] = now + cfg.neighbor_hold_s
            else:
                self._mpr_selectors.pop(prev_hop, None)
        link.lqi = header.link_quality.get(me, 1.0)
        # Rebuild this neighbour's two-hop contribution.
        for key in [k for k in self._two_hop if k[0] == prev_hop]:
            del self._two_hop[key]
        for n2, code in header.neighbors.items():
            if n2 == me or code == HEARD:
                continue
            ratio = header.link_quality.get(n2, 1.0)
            cost = (
                1.0 / max(ratio * ratio, _ETX_FLOOR)
                if cfg.metric == "etx"
                else 1.0
            )
            self._two_hop[(prev_hop, n2)] = (now + cfg.neighbor_hold_s, cost)
        self._select_mprs()
        self._dirty = True

    # -- TC --------------------------------------------------------------------------

    def _send_tc(self) -> None:
        now = self.sim.now
        selectors = [
            nbr for nbr, until in self._mpr_selectors.items() if until > now
        ]
        if not selectors:
            return  # RFC 3626 s9.3: no selectors, no TC
        self._ansn += 1
        self._msg_seq += 1
        costs = tuple(
            self._link_cost(nbr) if self.config.metric == "etx" else 1.0
            for nbr in selectors
        )
        header = TcHeader(
            orig=self.address,
            ansn=self._ansn,
            seq=self._msg_seq,
            advertised=tuple(selectors),
            costs=costs,
        )
        self.send_control(
            TC,
            header,
            _tc_size(header),
            BROADCAST,
            ttl=255,
            jitter_s=self.config.broadcast_jitter_s,
        )

    def _recv_tc(self, packet: Packet, prev_hop: int) -> None:
        cfg = self.config
        now = self.sim.now
        header: TcHeader = packet.header
        if header.orig == self.address:
            return
        key = (header.orig, header.seq)
        if key in self._dups:
            return
        self._dups[key] = now + 2 * cfg.topology_hold_s
        link = self._links.get(prev_hop)
        if link is None or link.sym_until <= now:
            return  # RFC 3626 s9.5: only accept TCs over symmetric links
        known_ansn = self._ansn_seen.get(header.orig, -1)
        if header.ansn < known_ansn:
            return  # stale topology information
        if header.ansn > known_ansn:
            self._ansn_seen[header.orig] = header.ansn
            for topo_key in [
                k for k in self._topology if k[1] == header.orig
            ]:
                del self._topology[topo_key]
        for dst, cost in zip(header.advertised, header.costs):
            self._topology[(dst, header.orig)] = (
                now + cfg.topology_hold_s,
                cost,
            )
        self._dirty = True
        # Default forwarding rule: retransmit iff the sender selected us
        # as one of its MPRs.
        if prev_hop in self._mpr_selectors and packet.ttl > 1:
            self.send_control(
                TC,
                header,
                _tc_size(header),
                BROADCAST,
                ttl=packet.ttl - 1,
                jitter_s=cfg.broadcast_jitter_s,
            )

    # -- HNA --------------------------------------------------------------------------

    def _send_hna(self) -> None:
        self._msg_seq += 1
        header = HnaHeader(
            orig=self.address,
            seq=self._msg_seq,
            networks=tuple(self.config.gateway_for),
        )
        self.send_control(
            HNA,
            header,
            _hna_size(header),
            BROADCAST,
            ttl=255,
            jitter_s=self.config.broadcast_jitter_s,
        )

    def _recv_hna(self, packet: Packet, prev_hop: int) -> None:
        cfg = self.config
        now = self.sim.now
        header: HnaHeader = packet.header
        if header.orig == self.address:
            return
        key = (header.orig, header.seq)
        if key in self._dups:
            return
        self._dups[key] = now + 2 * self.hna_hold_s
        link = self._links.get(prev_hop)
        if link is None or link.sym_until <= now:
            return
        for network in header.networks:
            self._hna.setdefault(network, {})[header.orig] = (
                now + self.hna_hold_s
            )
        # HNA floods through the MPR backbone exactly like TC.
        if prev_hop in self._mpr_selectors and packet.ttl > 1:
            self.send_control(
                HNA,
                header,
                _hna_size(header),
                BROADCAST,
                ttl=packet.ttl - 1,
                jitter_s=cfg.broadcast_jitter_s,
            )

    @property
    def hna_hold_s(self) -> float:
        """Validity of HNA-learned gateway associations."""
        return self.config.hold_multiplier * self.config.hna_interval_s

    def _hna_route(self, dst: int) -> Optional[Tuple[int, int]]:
        """Route towards the nearest gateway advertising ``dst``."""
        now = self.sim.now
        gateways = self._hna.get(dst)
        if not gateways:
            return None
        best: Optional[Tuple[int, int]] = None
        for gateway, until in gateways.items():
            if until <= now:
                continue
            route = self._route_for(gateway)
            if route is not None and (best is None or route[1] < best[1]):
                best = route
        return best

    def hna_gateways(self, dst: int) -> Dict[int, float]:
        """Currently known gateways for an external destination (copy)."""
        now = self.sim.now
        return {
            gw: until
            for gw, until in self._hna.get(dst, {}).items()
            if until > now
        }

    # -- MPR selection -------------------------------------------------------------------

    def _select_mprs(self) -> None:
        now = self.sim.now
        sym = {
            nbr
            for nbr, link in self._links.items()
            if link.sym_until > now
        }
        coverage: Dict[int, Set[int]] = {nbr: set() for nbr in sym}
        uncovered: Set[int] = set()
        for (nbr, n2), (until, _cost) in self._two_hop.items():
            if until <= now or nbr not in sym:
                continue
            if n2 in sym or n2 == self.address:
                continue
            coverage[nbr].add(n2)
            uncovered.add(n2)
        mprs: Set[int] = set()
        # First: neighbours that are the only path to some two-hop node.
        for n2 in list(uncovered):
            providers = [nbr for nbr in sym if n2 in coverage[nbr]]
            if len(providers) == 1:
                mprs.add(providers[0])
        for nbr in mprs:
            uncovered -= coverage[nbr]
        # Then: greedy by residual coverage (ties to lower id: determinism).
        while uncovered:
            best = max(
                sym - mprs,
                key=lambda nbr: (len(coverage[nbr] & uncovered), -nbr),
                default=None,
            )
            if best is None or not coverage[best] & uncovered:
                break  # leftover two-hop nodes are unreachable right now
            mprs.add(best)
            uncovered -= coverage[best]
        self._mprs = mprs

    # -- routing table ----------------------------------------------------------------------

    def _route_for(self, dst: int) -> Optional[Tuple[int, int]]:
        if self._dirty:
            self._recompute_routes()
        return self._routes.get(dst)

    def _recompute_routes(self) -> None:
        now = self.sim.now
        graph: Dict[int, Dict[int, float]] = collections.defaultdict(dict)
        me = self.address
        for nbr, link in self._links.items():
            if link.sym_until > now:
                graph[me][nbr] = self._link_cost(nbr)
        for (nbr, n2), (until, cost) in self._two_hop.items():
            if until > now and nbr in graph[me]:
                graph[nbr].setdefault(n2, cost)
        for (dst, last_hop), (until, cost) in self._topology.items():
            if until > now:
                # TC links are bidirectional between MPR and selector.
                graph[last_hop].setdefault(dst, cost)
                graph[dst].setdefault(last_hop, cost)
        # Dijkstra with hop counting for the route table.
        dist: Dict[int, float] = {me: 0.0}
        hops: Dict[int, int] = {me: 0}
        first_hop: Dict[int, int] = {}
        heap = [(0.0, me)]
        visited: Set[int] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in visited:
                continue
            visited.add(u)
            for v, cost in graph.get(u, {}).items():
                nd = d + cost
                if nd < dist.get(v, float("inf")) - 1e-12:
                    dist[v] = nd
                    hops[v] = hops[u] + 1
                    first_hop[v] = v if u == me else first_hop[u]
                    heapq.heappush(heap, (nd, v))
        self._routes = {
            dst: (first_hop[dst], hops[dst])
            for dst in dist
            if dst != me and dst in first_hop
        }
        self._dirty = False

    def routing_table(self) -> Dict[int, Tuple[int, int]]:
        """Snapshot of the computed routes: dst -> (next_hop, hops)."""
        if self._dirty:
            self._recompute_routes()
        return dict(self._routes)

    @property
    def mprs(self) -> Set[int]:
        """The currently selected multi-point relays."""
        return set(self._mprs)

    # -- metrics helpers ------------------------------------------------------------------------

    def _reception_ratio(self, nbr: int) -> float:
        """NI(i): fraction of expected HELLOs recently received from nbr."""
        cfg = self.config
        arrivals = self._hello_rx.get(nbr)
        if not arrivals:
            return 0.0
        window_start = self.sim.now - cfg.etx_window * cfg.hello_interval_s
        received = sum(1 for t in arrivals if t >= window_start)
        return min(received / cfg.etx_window, 1.0)

    def _link_cost(self, nbr: int) -> float:
        if self.config.metric != "etx":
            return 1.0
        link = self._links.get(nbr)
        lqi = link.lqi if link is not None else 1.0
        ni = self._reception_ratio(nbr)
        return 1.0 / max(ni * lqi, _ETX_FLOOR)

    # -- maintenance -------------------------------------------------------------------------------

    def _maintenance(self) -> None:
        now = self.sim.now
        for nbr in [
            n for n, link in self._links.items() if link.heard_until <= now
        ]:
            del self._links[nbr]
            self._hello_rx.pop(nbr, None)
            self._dirty = True
        for key in [k for k, (until, _) in self._two_hop.items() if until <= now]:
            del self._two_hop[key]
            self._dirty = True
        for nbr in [
            n for n, until in self._mpr_selectors.items() if until <= now
        ]:
            del self._mpr_selectors[nbr]
        for key in [
            k for k, (until, _) in self._topology.items() if until <= now
        ]:
            del self._topology[key]
            self._dirty = True
        self._dups = {k: u for k, u in self._dups.items() if u > now}
        for network in list(self._hna):
            gateways = {
                gw: until
                for gw, until in self._hna[network].items()
                if until > now
            }
            if gateways:
                self._hna[network] = gateways
            else:
                del self._hna[network]
