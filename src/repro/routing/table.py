"""Routing tables shared by the reactive protocols.

"Every node in network maintains the route information table" (paper
Section III-B.2).  Entries carry destination sequence numbers for loop
freedom, lifetimes for expiry, and precursor lists for RERR propagation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, Optional, Set


@dataclasses.dataclass
class RouteEntry:
    """One destination's route.

    Attributes:
        dst: destination node id.
        next_hop: neighbour to forward through.
        hops: path length in hops.
        seq: destination sequence number (freshness).
        expires_at: simulated time after which the entry is stale.
        valid: False after invalidation (kept for its sequence number).
        precursors: neighbours known to route *through us* towards ``dst``
            (they must be told when the route breaks).
    """

    dst: int
    next_hop: int
    hops: int
    seq: int
    expires_at: float
    valid: bool = True
    precursors: Set[int] = dataclasses.field(default_factory=set)


class RouteTable:
    """Destination-indexed route entries with expiry semantics."""

    def __init__(self) -> None:
        self._entries: Dict[int, RouteEntry] = {}

    def lookup(self, dst: int, now: float) -> Optional[RouteEntry]:
        """The valid, unexpired entry for ``dst``, or None."""
        entry = self._entries.get(dst)
        if entry is None or not entry.valid or entry.expires_at <= now:
            return None
        return entry

    def get(self, dst: int) -> Optional[RouteEntry]:
        """The raw entry (possibly invalid/expired), or None."""
        return self._entries.get(dst)

    def update(
        self,
        dst: int,
        next_hop: int,
        hops: int,
        seq: int,
        lifetime: float,
        now: float,
    ) -> RouteEntry:
        """Install or refresh a route, honouring sequence-number freshness.

        The route is replaced when the new information is fresher (higher
        seq), or equally fresh but shorter, or when the existing entry is
        invalid/expired.  Refreshing never shortens a longer remaining
        lifetime.
        """
        entry = self._entries.get(dst)
        if entry is None:
            entry = RouteEntry(dst, next_hop, hops, seq, now + lifetime)
            self._entries[dst] = entry
            return entry
        stale = not entry.valid or entry.expires_at <= now
        fresher = seq > entry.seq
        same_but_better = seq == entry.seq and hops < entry.hops
        if stale or fresher or same_but_better:
            entry.next_hop = next_hop
            entry.hops = hops
            entry.seq = max(seq, entry.seq)
            entry.valid = True
            entry.expires_at = max(entry.expires_at, now + lifetime)
        elif seq == entry.seq and next_hop == entry.next_hop:
            entry.expires_at = max(entry.expires_at, now + lifetime)
        return entry

    def refresh(self, dst: int, lifetime: float, now: float) -> None:
        """Extend the lifetime of an active route (route used for data)."""
        entry = self._entries.get(dst)
        if entry is not None and entry.valid:
            entry.expires_at = max(entry.expires_at, now + lifetime)

    def invalidate(self, dst: int) -> Optional[RouteEntry]:
        """Mark ``dst``'s route broken; bumps its seq as RFC 3561 requires."""
        entry = self._entries.get(dst)
        if entry is not None and entry.valid:
            entry.valid = False
            entry.seq += 1
            return entry
        return None

    def invalidate_via(self, next_hop: int) -> list:
        """Invalidate every route through ``next_hop``; returns the entries."""
        broken = []
        for entry in self._entries.values():
            if entry.valid and entry.next_hop == next_hop:
                entry.valid = False
                entry.seq += 1
                broken.append(entry)
        return broken

    def valid_destinations(self, now: float) -> Iterator[int]:
        """Destinations with a currently usable route."""
        for dst, entry in self._entries.items():
            if entry.valid and entry.expires_at > now:
                yield dst

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, dst: int) -> bool:
        return dst in self._entries
