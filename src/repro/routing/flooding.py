"""Blind flooding — the zero-intelligence baseline.

Every data packet is broadcast; every node rebroadcasts unseen packets
until the TTL runs out.  Delivery is maximally robust and maximally
wasteful, which makes it a useful lower bound for routing-overhead studies
and a sanity check for the simulator itself (if flooding cannot deliver,
the network is partitioned).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Set

import numpy as np

from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.routing.base import RoutingProtocol


@dataclasses.dataclass(frozen=True)
class FloodingConfig:
    """Tunables for the flooding baseline."""

    default_ttl: int = 16
    broadcast_jitter_s: float = 0.01


class Flooding(RoutingProtocol):
    """Broadcast-everything 'routing'."""

    name = "FLOODING"

    def __init__(
        self,
        node: "Node",
        rng: Optional[np.random.Generator] = None,
        config: Optional[FloodingConfig] = None,
    ) -> None:
        super().__init__(node, rng)
        self.config = config if config is not None else FloodingConfig()
        self._seen: Set[int] = set()

    def route_output(self, packet: Packet) -> None:
        self._seen.add(packet.uid)
        capped = dataclasses.replace(
            packet, ttl=min(packet.ttl, self.config.default_ttl)
        )
        self.node.send_via(capped, BROADCAST)

    def forward_data(self, packet: Packet, prev_hop: int) -> None:
        if packet.uid in self._seen:
            return
        self._seen.add(packet.uid)
        if packet.ttl <= 1:
            self.node.drop(packet, "ttl_expired")
            return
        self.sim.schedule(
            float(self.rng.uniform(0.0, self.config.broadcast_jitter_s)),
            self.node.send_via,
            packet.copy_for_forwarding(),
            BROADCAST,
        )

    def recv_control(self, packet: Packet, prev_hop: int) -> None:
        """Flooding has no control plane; nothing to do."""
