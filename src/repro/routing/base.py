"""The routing-protocol interface and shared machinery.

Every protocol sits at the network layer of a :class:`~repro.net.node.Node`:
data packets from applications enter through :meth:`route_output`, packets
to forward through :meth:`forward_data`, control packets through
:meth:`recv_control`, and MAC-level delivery failures through
:meth:`on_link_failure`.
"""

from __future__ import annotations

import abc
from typing import Any, Optional

import numpy as np

from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.util.errors import InvariantViolation

#: Hard ceiling on hops a packet may accumulate.  Every data packet starts
#: with ttl <= 64 and loses one per forward, so hops can never legitimately
#: reach this; exceeding it means a protocol is forwarding without
#: decrementing the TTL — a routing loop the TTL cannot kill.
MAX_HOPS = 256


class RoutingProtocol(abc.ABC):
    """Base class wiring a protocol instance to its node."""

    #: Protocol name used in packet kinds and registry lookups.
    name = "BASE"

    def __init__(self, node: "Node", rng: Optional[np.random.Generator] = None) -> None:
        self.node = node
        self.sim = node.sim
        self.rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def address(self) -> int:
        """This node's address."""
        return self.node.node_id

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Arm periodic timers.  Called once after all nodes are built."""

    def reset_state(self) -> None:
        """Wipe volatile routing state (a node crash, see :mod:`repro.faults`).

        Called when the owning node fails: drop route tables, neighbour
        sets, duplicate caches and pending discoveries — everything the
        protocol learned from the network — but KEEP monotone sequence
        counters (post-recovery messages must not be mistaken for stale
        ones) and leave periodic timers armed (they draw from the node's
        RNG stream per firing; their sends are gated at the node while it
        is down).  Stateless protocols inherit this no-op.
        """

    # -- introspection ---------------------------------------------------------

    def next_hop_for(self, dst: int) -> Optional[int]:
        """The neighbour this node would currently forward ``dst`` via.

        ``None`` when no usable route exists (or the protocol has no
        notion of a next hop, like flooding).  Used by the routing audit
        (:mod:`repro.routing.audit`) to verify loop freedom.
        """
        return None

    # -- the four entry points -------------------------------------------------

    @abc.abstractmethod
    def route_output(self, packet: Packet) -> None:
        """Handle a locally originated data packet."""

    def forward_data(self, packet: Packet, prev_hop: int) -> None:
        """Handle a data packet in transit (default: TTL check + re-route).

        Subclasses that need reverse-route refreshing or buffering override
        this and usually still delegate to :meth:`route_output` logic.
        """
        self.check_ttl_guard(packet)
        if packet.ttl <= 1:
            self.node.drop(packet, "ttl_expired")
            return
        self.route_output(packet.copy_for_forwarding())

    def check_ttl_guard(self, packet: Packet) -> None:
        """Always-on loop guard: a packet's hop count must stay bounded.

        TTL decrementing is each protocol's responsibility; if one forgets
        (or resets TTL on forward), a routing loop circulates the packet
        forever and the simulation livelocks instead of failing.  This trips
        at :data:`MAX_HOPS` — far above any legitimate path length — and
        raises :class:`~repro.util.errors.InvariantViolation` carrying the
        packet's identity and position so the loop is reproducible.
        """
        if packet.hops >= MAX_HOPS:
            raise InvariantViolation(
                "packet exceeded the hop ceiling (routing loop outliving "
                "its TTL?)",
                protocol=self.name,
                node=self.address,
                packet_uid=packet.uid,
                kind=packet.kind,
                src=packet.src,
                dst=packet.dst,
                ttl=packet.ttl,
                hops=packet.hops,
                time=self.sim.now,
            )

    @abc.abstractmethod
    def recv_control(self, packet: Packet, prev_hop: int) -> None:
        """Handle one of this protocol's control packets."""

    def on_link_failure(self, packet: Packet, next_hop: int) -> None:
        """The MAC gave up delivering ``packet`` to ``next_hop``."""

    # -- send helpers ------------------------------------------------------------

    def send_control(
        self,
        kind: str,
        header: Any,
        size_bytes: int,
        next_hop: int,
        ttl: int = 1,
        jitter_s: float = 0.0,
    ) -> None:
        """Build and send a control packet.

        ``next_hop = BROADCAST`` sends link-local broadcast; ``jitter_s``
        delays the send by a uniform random amount in ``[0, jitter_s)``,
        which de-synchronises flooding storms (every real implementation of
        these protocols jitters its broadcasts).
        """
        packet = Packet(
            kind=kind,
            src=self.address,
            dst=next_hop if next_hop != BROADCAST else BROADCAST,
            size_bytes=size_bytes,
            created_at=self.sim.now,
            ttl=ttl,
            header=header,
        )
        if jitter_s > 0:
            delay = float(self.rng.uniform(0.0, jitter_s))
            self.sim.schedule(delay, self.node.send_via, packet, next_hop)
        else:
            self.node.send_via(packet, next_hop)
