"""The kernel-backend contract (and its pure-Python implementation).

A *kernel backend* supplies the hot inner loops of a run — the NaSch
update, link-cache row construction and DCF bookkeeping — behind a
fixed method surface.  Components (``NagelSchreckenberg``,
``MultiLaneRoad``, ``Channel``, ``DcfBook``) take a backend (or its
registry name) at construction and call only these methods, so
swapping ``kernels="python"`` for ``kernels="numba"`` or
``kernels="cjit"`` changes *where* the loops execute and nothing about
what they compute: every backend is bit-identical by contract, and the
default-scenario goldens plus the grid-vs-dense identity tests run
under multiple backends to enforce it.

:class:`KernelBackend` doubles as the ``"python"`` backend: its
methods wrap the reference loops of :mod:`repro.kernels.pyref`
directly (with a per-link scalar-``np.hypot`` distance loop, the same
shape as the channel's ``fast_path=False`` reference).  Subclasses
override whichever methods they can execute faster —
:class:`~repro.kernels.vector.VectorBackend` with the numpy
expressions the components used before this package existed, the
compiled backends with machine code generated from the pyref loops.

Third-party backends subclass this class and register a factory under
the ``kernels`` namespace; see docs/API.md "Compiled kernels".
"""

from __future__ import annotations

import numpy as np

from repro.kernels import pyref


def _restore_backend(name: str) -> "KernelBackend":
    """Unpickle hook: re-resolve a backend by registry name.

    Backends hold process-local resources (ctypes handles, JIT
    dispatchers) that cannot cross a pickle boundary, so journals and
    copies serialise only the name and rebuild on load — falling back
    (with the usual one-time warning) if the named backend is
    unavailable on the restoring machine.
    """
    from repro.kernels import resolve_backend

    return resolve_backend(name)


class KernelUnavailable(RuntimeError):
    """A backend cannot run here (missing JIT package, no C compiler).

    Raised by backend constructors; :func:`repro.kernels.resolve_backend`
    catches it, warns once, and falls back to an always-available
    backend — a machine without numba or a compiler still runs every
    scenario, just slower.
    """


class KernelBackend:
    """Pure-Python reference backend (``kernels="python"``).

    The ground truth the compiled backends are verified against.  All
    methods operate on the caller's preallocated numpy arrays; scratch
    buffers are cached per backend instance (runs are single-threaded
    per process, and backend instances are process-local singletons).
    """

    #: Canonical registry name of this backend.
    name = "python"
    #: Whether the hot loops run as machine code.
    compiled = False

    def __init__(self) -> None:
        self._keep_scratch: dict = {}

    def __reduce__(self):
        return (_restore_backend, (self.name,))

    # -- CA ------------------------------------------------------------------

    def nasch_step(self, pos, vel, gaps_out, wrapped_out, draws,
                   use_draws, p, v_max, num_cells) -> int:
        """One NaSch update in place; see :func:`pyref.nasch_step`."""
        return pyref.nasch_step(
            pos, vel, gaps_out, wrapped_out, draws, use_draws,
            p, v_max, num_cells,
        )

    def cyclic_gaps(self, pos, num_cells) -> np.ndarray:
        """Gap to the vehicle ahead on a cyclic lane (ring order)."""
        out = np.empty(len(pos), dtype=np.int64)
        if len(pos):
            pyref.cyclic_gaps(pos, num_cells, out)
        return out

    # -- PHY link-cache rows -------------------------------------------------

    def row_select(self, cand, ids, num_positions):
        """``(sel_ids, reg_idx)``: the registered radios within the
        spatial candidate set, in registration order."""
        cand = np.ascontiguousarray(cand, dtype=np.int64)
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        keep = self._keep(num_positions)
        sel_ids = np.empty(len(ids), dtype=np.int64)
        reg_idx = np.empty(len(ids), dtype=np.int64)
        k = pyref.row_select(cand, ids, keep, sel_ids, reg_idx)
        return sel_ids[:k], reg_idx[:k]

    def row_distances(self, positions, sel_ids, sender_id) -> np.ndarray:
        """Sender-to-receiver distances for one row.

        The reference loop calls scalar ``np.hypot`` per link — the
        same ufunc the vectorized path applies elementwise, so the
        values are bit-equal (this is the one place a kernel touches
        transcendental math, and it stays on the numpy ufunc on every
        backend for exactly that reason).
        """
        sender_pos = positions[sender_id]
        out = np.empty(len(sel_ids), dtype=np.float64)
        for i, node in enumerate(sel_ids.tolist()):
            delta = positions[node] - sender_pos
            out[i] = np.hypot(delta[0], delta[1])
        return out

    def row_filter(self, powers, thresholds, sel_ids, sender_id):
        """Indices (into the row) above carrier sense, sender excluded."""
        sel_ids = np.ascontiguousarray(sel_ids, dtype=np.int64)
        out = np.empty(len(powers), dtype=np.int64)
        k = pyref.row_filter(
            np.ascontiguousarray(powers, dtype=np.float64),
            np.ascontiguousarray(thresholds, dtype=np.float64),
            sel_ids, sender_id, out,
        )
        return out[:k]

    # -- DCF struct-of-arrays bookkeeping ------------------------------------

    def dcf_consume_backoffs(self, slots, started, idx, now, slot_s) -> None:
        """Debit elapsed whole slots from the pending backoffs in ``idx``."""
        pyref.dcf_consume_backoffs(
            slots, started, np.ascontiguousarray(idx, dtype=np.int64),
            now, slot_s,
        )

    def dcf_expired_navs(self, nav, now) -> np.ndarray:
        """MAC indices whose armed NAV has expired at ``now``."""
        out = np.empty(len(nav), dtype=np.int64)
        k = pyref.dcf_expired_navs(nav, now, out)
        return out[:k]

    # -- internals -----------------------------------------------------------

    def _keep(self, num_positions: int) -> np.ndarray:
        scratch = self._keep_scratch.get(num_positions)
        if scratch is None:
            scratch = np.zeros(num_positions, dtype=bool)
            self._keep_scratch[num_positions] = scratch
        return scratch

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<kernel backend {self.name!r} compiled={self.compiled}>"
