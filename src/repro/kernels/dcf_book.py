"""Struct-of-arrays ledger for per-MAC DCF contention state.

Each :class:`~repro.mac.dcf.Mac80211` historically kept its contention
window, pending backoff slots and NAV horizon as Python instance
attributes.  :class:`DcfBook` hoists that state into shared numpy
arrays — one slot per MAC, handed out by :meth:`register` — so the
whole population's bookkeeping lives in three cache-friendly vectors
that batched kernels can sweep without touching Python objects.

Two access styles coexist deliberately:

* **Scalar updates** (:meth:`consume_backoff`, :meth:`double_cw`,
  :meth:`reset`) are plain Python arithmetic on a single array cell.
  The DES delivers MAC transitions one event at a time, and a
  compiled call for one subtraction costs more than the subtraction —
  so these stay inline and are identical on every backend by
  construction.
* **Batched sweeps** (:meth:`consume_backoffs`, :meth:`expired_navs`)
  route through the kernel backend and exist for whole-population
  passes (a busy-medium broadcast freezing many backoffs at one
  instant, a NAV audit).  The scalar and batched forms compute the
  same truncating arithmetic; ``tests/test_kernels.py`` holds them
  equivalent.

Encoding notes: ``backoff_slots[i] < 0`` (the ``_NO_BACKOFF`` sentinel)
means "no draw taken yet" — the old ``_backoff_slots is None`` — which
is distinct from ``0`` ("draw taken and fully consumed"); ``nav_until``
is an absolute time, ``0.0`` meaning "never armed".
"""

from __future__ import annotations

import numpy as np

#: ``backoff_slots`` value meaning "no backoff drawn" (old ``None``).
_NO_BACKOFF = -1

_GROW = 16


class DcfBook:
    """Shared struct-of-arrays DCF state for a population of MACs."""

    def __init__(self, kernels="vector"):
        from repro.kernels import resolve_backend

        self._backend = resolve_backend(kernels)
        self._count = 0
        cap = _GROW
        self.cw = np.zeros(cap, dtype=np.int64)
        self.backoff_slots = np.full(cap, _NO_BACKOFF, dtype=np.int64)
        self.backoff_started = np.zeros(cap, dtype=np.float64)
        self.need_backoff = np.zeros(cap, dtype=bool)
        self.nav_until = np.zeros(cap, dtype=np.float64)
        #: Rate (bps) of each MAC's most recent DATA transmission —
        #: written by :class:`~repro.mac.dcf.Mac80211` from its tech
        #: profile's SNR->MCS selection; ``0.0`` until the first DATA
        #: frame.  Telemetry only: no kernel reads it back.
        self.last_rate_bps = np.zeros(cap, dtype=np.float64)

    @property
    def backend(self):
        """The kernel backend batched sweeps execute on."""
        return self._backend

    def __len__(self) -> int:
        return self._count

    def register(self, cw_min: int) -> int:
        """Claim a slot for one MAC; returns its index into the arrays."""
        i = self._count
        if i == len(self.cw):
            self._grow()
        self.cw[i] = cw_min
        self.backoff_slots[i] = _NO_BACKOFF
        self.backoff_started[i] = 0.0
        self.need_backoff[i] = False
        self.nav_until[i] = 0.0
        self.last_rate_bps[i] = 0.0
        self._count += 1
        return i

    # -- scalar updates (inline arithmetic; backend-independent) -------------

    def consume_backoff(self, i: int, now: float, slot_s: float) -> None:
        """Freeze MAC ``i``'s countdown: debit whole elapsed slots."""
        slots = int(self.backoff_slots[i])
        if slots > 0:
            consumed = int((now - float(self.backoff_started[i])) / slot_s)
            self.backoff_slots[i] = max(slots - consumed, 0)

    def double_cw(self, i: int, cw_max: int) -> None:
        """Binary-exponential CW growth after a failed exchange."""
        self.cw[i] = min(2 * (int(self.cw[i]) + 1) - 1, cw_max)

    def reset(self, i: int, cw_min: int) -> None:
        """Return MAC ``i`` to post-success contention state."""
        self.cw[i] = cw_min
        self.backoff_slots[i] = _NO_BACKOFF
        self.need_backoff[i] = True

    # -- batched sweeps (backend-routed) -------------------------------------

    def consume_backoffs(self, idx, now: float, slot_s: float) -> None:
        """Batched :meth:`consume_backoff` over the MAC indices ``idx``."""
        self._backend.dcf_consume_backoffs(
            self.backoff_slots, self.backoff_started, idx, now, slot_s,
        )

    def expired_navs(self, now: float) -> np.ndarray:
        """Indices of registered MACs whose armed NAV has expired."""
        return self._backend.dcf_expired_navs(
            self.nav_until[: self._count], now,
        )

    # -- internals -----------------------------------------------------------

    def _grow(self) -> None:
        cap = len(self.cw) + _GROW
        self.cw = np.resize(self.cw, cap)
        slots = np.full(cap, _NO_BACKOFF, dtype=np.int64)
        slots[: self._count] = self.backoff_slots[: self._count]
        self.backoff_slots = slots
        self.backoff_started = np.resize(self.backoff_started, cap)
        need = np.zeros(cap, dtype=bool)
        need[: self._count] = self.need_backoff[: self._count]
        self.need_backoff = need
        self.nav_until = np.resize(self.nav_until, cap)
        self.last_rate_bps = np.resize(self.last_rate_bps, cap)
