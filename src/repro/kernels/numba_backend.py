"""Numba kernel backend: ``@njit`` over the reference loops.

The reference functions in :mod:`repro.kernels.pyref` are written in
the nopython subset, so this backend simply wraps them with
``numba.njit`` — there is no second implementation to drift from the
ground truth.  Compilation is lazy (first call per signature) and
cached on disk by numba itself.

On a machine without numba the constructor raises
:class:`~repro.kernels.base.KernelUnavailable`;
:func:`repro.kernels.resolve_backend` catches it, warns once, and runs
the pure-Python path bit-identically.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import pyref
from repro.kernels.base import KernelUnavailable
from repro.kernels.vector import VectorBackend


class NumbaBackend(VectorBackend):
    """JIT-compiled kernels (``kernels="numba"``).

    Inherits the vectorized ``row_distances`` (numpy hypot — the
    no-transcendentals rule keeps libm out of jitted code) and compiles
    every branchy reference loop.
    """

    name = "numba"
    compiled = True

    def __init__(self) -> None:
        super().__init__()
        try:
            from numba import njit
        except ImportError as exc:
            raise KernelUnavailable(f"numba is not installed: {exc}")
        jit = njit(cache=True)
        self._nasch_step = jit(pyref.nasch_step)
        self._cyclic_gaps = jit(pyref.cyclic_gaps)
        self._row_select = jit(pyref.row_select)
        self._row_filter = jit(pyref.row_filter)
        self._dcf_consume_backoffs = jit(pyref.dcf_consume_backoffs)
        self._dcf_expired_navs = jit(pyref.dcf_expired_navs)

    def nasch_step(self, pos, vel, gaps_out, wrapped_out, draws,
                   use_draws, p, v_max, num_cells) -> int:
        return int(self._nasch_step(
            pos, vel, gaps_out, wrapped_out, draws, use_draws,
            p, v_max, num_cells,
        ))

    def cyclic_gaps(self, pos, num_cells) -> np.ndarray:
        out = np.empty(len(pos), dtype=np.int64)
        if len(pos):
            self._cyclic_gaps(
                np.ascontiguousarray(pos, dtype=np.int64), num_cells, out
            )
        return out

    def row_select(self, cand, ids, num_positions):
        cand = np.ascontiguousarray(cand, dtype=np.int64)
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        keep = self._keep(num_positions)
        sel_ids = np.empty(len(ids), dtype=np.int64)
        reg_idx = np.empty(len(ids), dtype=np.int64)
        k = int(self._row_select(cand, ids, keep, sel_ids, reg_idx))
        return sel_ids[:k], reg_idx[:k]

    def row_filter(self, powers, thresholds, sel_ids, sender_id):
        sel_ids = np.ascontiguousarray(sel_ids, dtype=np.int64)
        out = np.empty(len(powers), dtype=np.int64)
        k = int(self._row_filter(
            np.ascontiguousarray(powers, dtype=np.float64),
            np.ascontiguousarray(thresholds, dtype=np.float64),
            sel_ids, sender_id, out,
        ))
        return out[:k]

    def dcf_consume_backoffs(self, slots, started, idx, now, slot_s) -> None:
        self._dcf_consume_backoffs(
            slots, started, np.ascontiguousarray(idx, dtype=np.int64),
            now, slot_s,
        )

    def dcf_expired_navs(self, nav, now) -> np.ndarray:
        out = np.empty(len(nav), dtype=np.int64)
        k = int(self._dcf_expired_navs(nav, now, out))
        return out[:k]
