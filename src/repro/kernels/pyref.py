"""Pure-Python reference kernels: the bit-identity ground truth.

Every function here is the explicit-loop statement of one hot inner
loop — the NaSch update, link-cache row construction, DCF bookkeeping.
They are written in the *nopython* subset shared by Numba and a
line-for-line C translation (see :mod:`repro.kernels.cjit`): plain
``for`` loops over preallocated int64/float64/bool arrays, no Python
containers, no allocation, results returned as counts or indices.  That
single restriction is what lets the compiled backends be generated
*from* these functions (``numba.njit`` wraps them directly; the C
source mirrors them statement for statement) and then be proven
bit-identical against them.

Bit-identity rules the kernels obey (see docs/API.md "Compiled
kernels"):

* **No RNG inside a kernel.**  Randomness (dawdle draws, backoff
  draws) is drawn by the caller from the owning component's generator
  in the documented order and passed in as a pre-drawn variate array,
  so every backend consumes the stream identically.
* **No transcendental math inside a kernel.**  Distances (hypot) and
  received powers come in as arrays computed by the shared numpy code;
  kernels only do integer state evolution, IEEE +,-,*,/ and
  comparisons — operations that are exact (or correctly rounded) on
  every backend, so results match bit for bit across python, numba and
  generated C.
* **First-index tie-breaking.**  Where the vectorized code reports
  ``argmax`` of a violation mask, kernels report the first offending
  index; output index lists preserve input order.
"""

from __future__ import annotations


def nasch_step(pos, vel, gaps_out, wrapped_out, draws, use_draws,
               p, v_max, num_cells):
    """One NaSch update (accelerate/brake/dawdle/move) on a cyclic lane.

    ``pos``/``vel`` are int64 arrays in ring order and are updated in
    place; ``gaps_out`` (int64) and ``wrapped_out`` (bool) are scratch
    outputs.  ``draws`` holds the pre-drawn dawdle variates (consumed
    only when ``use_draws``; the caller draws ``rng.random(n)`` exactly
    when ``p > 0``, preserving stream order).  Returns the first index
    whose post-dawdle velocity violates the gap invariant — in which
    case ``pos`` is left untouched and no movement happens — or -1 on
    success.
    """
    n = pos.shape[0]
    bad = -1
    for i in range(n):
        if n == 1:
            gap = num_cells - 1
        else:
            gap = (pos[(i + 1) % n] - pos[i] - 1) % num_cells
        gaps_out[i] = gap
        v = vel[i] + 1
        if v > v_max:
            v = v_max
        if v > gap:
            v = gap
        if use_draws and draws[i] < p:
            v = v - 1
            if v < 0:
                v = 0
        vel[i] = v
        if (v > gap or v < 0) and bad < 0:
            bad = i
    if bad >= 0:
        return bad
    for i in range(n):
        new_pos = pos[i] + vel[i]
        if new_pos >= num_cells:
            new_pos -= num_cells
            wrapped_out[i] = True
        else:
            wrapped_out[i] = False
        pos[i] = new_pos
    return -1


def cyclic_gaps(pos, num_cells, out):
    """Free cells ahead of each vehicle on a cyclic lane (ring order)."""
    n = pos.shape[0]
    if n == 1:
        out[0] = num_cells - 1
        return
    for i in range(n):
        out[i] = (pos[(i + 1) % n] - pos[i] - 1) % num_cells


def row_select(cand, ids, keep, sel_ids, reg_idx):
    """Filter registered radios through a spatial candidate set.

    ``keep`` is a bool scratch of length num-positions (overwritten);
    ``sel_ids``/``reg_idx`` are int64 outputs of length ``len(ids)``.
    Returns the number of surviving radios; survivors keep the
    registration order of ``ids`` (the scalar-loop visit order).
    """
    for i in range(keep.shape[0]):
        keep[i] = False
    for i in range(cand.shape[0]):
        keep[cand[i]] = True
    k = 0
    for j in range(ids.shape[0]):
        if keep[ids[j]]:
            sel_ids[k] = ids[j]
            reg_idx[k] = j
            k += 1
    return k


def row_filter(powers, thresholds, sel_ids, sender, out_idx):
    """Receiver selection: above carrier sense and not the sender.

    Writes surviving indices (into the row arrays, in order) to
    ``out_idx`` and returns their count.  NaN powers compare false and
    are dropped, matching ``powers >= thresholds`` under numpy.
    """
    k = 0
    for i in range(powers.shape[0]):
        if powers[i] >= thresholds[i] and sel_ids[i] != sender:
            out_idx[k] = i
            k += 1
    return k


def dcf_consume_backoffs(slots, started, idx, now, slot_s):
    """Freeze pending backoffs: debit whole elapsed slots (batched).

    For each MAC index in ``idx`` with a positive slot count, subtracts
    ``int(elapsed / slot_s)`` and clamps at zero — the identical
    truncating arithmetic :class:`~repro.mac.dcf.Mac80211` applies on
    a medium-busy transition.
    """
    for j in range(idx.shape[0]):
        i = idx[j]
        if slots[i] > 0:
            consumed = int((now - started[i]) / slot_s)
            remaining = slots[i] - consumed
            if remaining < 0:
                remaining = 0
            slots[i] = remaining


def dcf_expired_navs(nav, now, out_idx):
    """Indices whose armed NAV (> 0) has expired (<= now), batched."""
    k = 0
    for i in range(nav.shape[0]):
        if nav[i] > 0.0 and nav[i] <= now:
            out_idx[k] = i
            k += 1
    return k
