"""Vectorized (numpy) kernel backend: the always-available fast path.

These are the exact numpy expressions the components executed inline
before the kernels package existed — ``np.roll``-based gaps, masked
``np.where`` dawdling, boolean-scatter candidate selection — so the
``"vector"`` backend is bit-identical to the historical behaviour *by
construction* (same operations on the same operands), and serves as
the fallback when no compiled backend can be built.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelBackend


class VectorBackend(KernelBackend):
    """Numpy array kernels (``kernels="vector"``)."""

    name = "vector"
    compiled = False

    # -- CA ------------------------------------------------------------------

    def nasch_step(self, pos, vel, gaps_out, wrapped_out, draws,
                   use_draws, p, v_max, num_cells) -> int:
        n = len(pos)
        if n == 1:
            gaps = np.array([num_cells - 1], dtype=np.int64)
        else:
            leader = np.roll(pos, -1)
            gaps = (leader - pos - 1) % num_cells
        gaps_out[:] = gaps
        new_vel = np.minimum(vel + 1, v_max)
        new_vel = np.minimum(new_vel, gaps)
        if use_draws:
            dawdle = draws < p
            new_vel = np.where(dawdle, np.maximum(new_vel - 1, 0), new_vel)
        vel[:] = new_vel
        if np.any(new_vel > gaps) or np.any(new_vel < 0):
            return int(np.argmax((new_vel > gaps) | (new_vel < 0)))
        new_pos = pos + new_vel
        wrapped_out[:] = new_pos >= num_cells
        pos[:] = new_pos % num_cells
        return -1

    def cyclic_gaps(self, pos, num_cells) -> np.ndarray:
        n = len(pos)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if n == 1:
            return np.array([num_cells - 1], dtype=np.int64)
        leader = np.roll(pos, -1)
        return (leader - pos - 1) % num_cells

    # -- PHY link-cache rows -------------------------------------------------

    def row_select(self, cand, ids, num_positions):
        keep = np.zeros(num_positions, dtype=bool)
        keep[cand] = True
        keep_reg = keep[ids]
        reg_idx = np.nonzero(keep_reg)[0]
        return ids[keep_reg], reg_idx

    def row_distances(self, positions, sel_ids, sender_id) -> np.ndarray:
        delta = positions[sel_ids] - positions[sender_id]
        return np.hypot(delta[:, 0], delta[:, 1])

    def row_filter(self, powers, thresholds, sel_ids, sender_id):
        mask = (powers >= thresholds) & (sel_ids != sender_id)
        return np.nonzero(mask)[0]

    # -- DCF struct-of-arrays bookkeeping ------------------------------------

    def dcf_consume_backoffs(self, slots, started, idx, now, slot_s) -> None:
        idx = np.asarray(idx, dtype=np.int64)
        active = idx[slots[idx] > 0]
        if len(active) == 0:
            return
        consumed = ((now - started[active]) / slot_s).astype(np.int64)
        slots[active] = np.maximum(slots[active] - consumed, 0)

    def dcf_expired_navs(self, nav, now) -> np.ndarray:
        return np.nonzero((nav > 0.0) & (nav <= now))[0].astype(np.int64)
