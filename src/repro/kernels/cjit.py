"""Generated-C kernel backend: compile the reference loops with a C compiler.

The ROADMAP's "compiled hot core" names Numba *or a generated-C
extension with a pure-Python fallback* as acceptable vehicles; this is
the latter.  The C source below is a statement-for-statement
translation of :mod:`repro.kernels.pyref` (same loop order, same
first-index tie-breaking, floored modulo spelled out as
``((a % L) + L) % L`` to match Python's semantics on negative
operands) restricted to integer arithmetic, IEEE double +,-,*,/ and
comparisons — no libm calls — so its outputs are bit-identical to the
reference on any IEEE-754 platform.  Distances stay on ``np.hypot``
(inherited from :class:`~repro.kernels.vector.VectorBackend`) per the
no-transcendentals rule.

The shared library is built once per source version with the system C
compiler (``$CC``, else ``cc``/``gcc``/``clang``) into a content-hashed
cache (``$REPRO_KERNELS_CACHE``, default ``~/.cache/repro/kernels``)
and loaded via :mod:`ctypes`; concurrent workers race benignly (atomic
rename, first writer wins).  Any failure — no compiler, sandboxed
filesystem, bad toolchain — raises
:class:`~repro.kernels.base.KernelUnavailable` and the resolver falls
back to the vector backend with a warning.

Arguments cross into C as raw ``c_void_p`` addresses
(``arr.ctypes.data``), not ``numpy.ctypeslib.ndpointer`` argtypes.
``ndpointer.from_param`` is pure Python, and ctypes re-types *any*
exception raised during argument conversion — including the
``KeyboardInterrupt`` the interpreter raises when SIGINT lands there —
as ``ctypes.ArgumentError``, a plain ``Exception``.  With millions of
kernel calls per campaign that window is wide enough that a Ctrl-C
during a sweep was intermittently swallowed by the trial-retry logic
as "ArgumentError: argument 1: KeyboardInterrupt" instead of aborting
the run.  Raw addresses convert in C with no Python hook, so pending
signals surface between bytecodes as genuine ``KeyboardInterrupt``.
In exchange the wrappers below own dtype and contiguity: every array
an outside caller can influence goes through ``np.ascontiguousarray``
first, and the rest are allocated here.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile

import numpy as np

from repro.kernels.base import KernelUnavailable
from repro.kernels.vector import VectorBackend

C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

typedef int64_t i64;

/* Floored modulo with a non-negative divisor, matching Python's `%`. */
static i64 fmod_floor(i64 a, i64 m)
{
    i64 r = a % m;
    return r < 0 ? r + m : r;
}

i64 nasch_step(i64 *pos, i64 *vel, i64 *gaps_out, uint8_t *wrapped_out,
               const double *draws, i64 use_draws, double p,
               i64 v_max, i64 num_cells, i64 n)
{
    i64 bad = -1;
    for (i64 i = 0; i < n; i++) {
        i64 gap;
        if (n == 1) {
            gap = num_cells - 1;
        } else {
            gap = fmod_floor(pos[(i + 1) % n] - pos[i] - 1, num_cells);
        }
        gaps_out[i] = gap;
        i64 v = vel[i] + 1;
        if (v > v_max) v = v_max;
        if (v > gap) v = gap;
        if (use_draws && draws[i] < p) {
            v = v - 1;
            if (v < 0) v = 0;
        }
        vel[i] = v;
        if ((v > gap || v < 0) && bad < 0) bad = i;
    }
    if (bad >= 0) return bad;
    for (i64 i = 0; i < n; i++) {
        i64 new_pos = pos[i] + vel[i];
        if (new_pos >= num_cells) {
            new_pos -= num_cells;
            wrapped_out[i] = 1;
        } else {
            wrapped_out[i] = 0;
        }
        pos[i] = new_pos;
    }
    return -1;
}

void cyclic_gaps(const i64 *pos, i64 num_cells, i64 *out, i64 n)
{
    if (n == 1) {
        out[0] = num_cells - 1;
        return;
    }
    for (i64 i = 0; i < n; i++) {
        out[i] = fmod_floor(pos[(i + 1) % n] - pos[i] - 1, num_cells);
    }
}

i64 row_select(const i64 *cand, i64 ncand, const i64 *ids, i64 nids,
               uint8_t *keep, i64 npos, i64 *sel_ids, i64 *reg_idx)
{
    memset(keep, 0, (size_t)npos);
    for (i64 i = 0; i < ncand; i++) keep[cand[i]] = 1;
    i64 k = 0;
    for (i64 j = 0; j < nids; j++) {
        if (keep[ids[j]]) {
            sel_ids[k] = ids[j];
            reg_idx[k] = j;
            k++;
        }
    }
    return k;
}

i64 row_filter(const double *powers, const double *thresholds,
               const i64 *sel_ids, i64 sender, i64 n, i64 *out_idx)
{
    i64 k = 0;
    for (i64 i = 0; i < n; i++) {
        if (powers[i] >= thresholds[i] && sel_ids[i] != sender) {
            out_idx[k] = i;
            k++;
        }
    }
    return k;
}

void dcf_consume_backoffs(i64 *slots, const double *started,
                          const i64 *idx, i64 nidx,
                          double now, double slot_s)
{
    for (i64 j = 0; j < nidx; j++) {
        i64 i = idx[j];
        if (slots[i] > 0) {
            i64 consumed = (i64)((now - started[i]) / slot_s);
            i64 remaining = slots[i] - consumed;
            slots[i] = remaining > 0 ? remaining : 0;
        }
    }
}

i64 dcf_expired_navs(const double *nav, i64 n, double now, i64 *out_idx)
{
    i64 k = 0;
    for (i64 i = 0; i < n; i++) {
        if (nav[i] > 0.0 && nav[i] <= now) {
            out_idx[k] = i;
            k++;
        }
    }
    return k;
}
"""

#: Raw-address argtype: int -> pointer conversion happens in C (see the
#: module docstring for why ndpointer must not be used here).
_PTR = ctypes.c_void_p
_c_i64 = ctypes.c_int64
_c_f64 = ctypes.c_double


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_KERNELS_CACHE")
    if configured:
        return configured
    home = os.path.expanduser("~")
    if home and home != "~":
        return os.path.join(home, ".cache", "repro", "kernels")
    return os.path.join(tempfile.gettempdir(), "repro-kernels")


def _find_compiler():
    configured = os.environ.get("CC")
    if configured:
        return shutil.which(configured) or configured
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_library() -> ctypes.CDLL:
    """Compile (once per source version) and load the kernel library."""
    tag = hashlib.sha256(C_SOURCE.encode()).hexdigest()[:16]
    suffix = "dll" if sys.platform == "win32" else "so"
    cache = _cache_dir()
    so_path = os.path.join(cache, f"reprokernels-{tag}.{suffix}")
    if not os.path.exists(so_path):
        compiler = _find_compiler()
        if compiler is None:
            raise KernelUnavailable(
                "no C compiler found (checked $CC, cc, gcc, clang)"
            )
        try:
            os.makedirs(cache, exist_ok=True)
            c_path = os.path.join(cache, f"reprokernels-{tag}.c")
            with open(c_path, "w") as handle:
                handle.write(C_SOURCE)
            fd, tmp_path = tempfile.mkstemp(
                dir=cache, suffix=f".{suffix}.tmp"
            )
            os.close(fd)
            result = subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC", "-o", tmp_path, c_path],
                capture_output=True, text=True, timeout=120,
            )
            if result.returncode != 0:
                os.unlink(tmp_path)
                raise KernelUnavailable(
                    f"C compile failed ({compiler}): "
                    f"{result.stderr.strip()[:500]}"
                )
            os.replace(tmp_path, so_path)
        except KernelUnavailable:
            raise
        except (OSError, subprocess.SubprocessError) as exc:
            raise KernelUnavailable(f"cannot build kernel library: {exc}")
    try:
        lib = ctypes.CDLL(so_path)
    except OSError as exc:
        raise KernelUnavailable(f"cannot load {so_path}: {exc}")

    lib.nasch_step.argtypes = [
        _PTR, _PTR, _PTR, _PTR, _PTR, _c_i64, _c_f64, _c_i64, _c_i64, _c_i64,
    ]
    lib.nasch_step.restype = _c_i64
    lib.cyclic_gaps.argtypes = [_PTR, _c_i64, _PTR, _c_i64]
    lib.cyclic_gaps.restype = None
    lib.row_select.argtypes = [
        _PTR, _c_i64, _PTR, _c_i64, _PTR, _c_i64, _PTR, _PTR,
    ]
    lib.row_select.restype = _c_i64
    lib.row_filter.argtypes = [_PTR, _PTR, _PTR, _c_i64, _c_i64, _PTR]
    lib.row_filter.restype = _c_i64
    lib.dcf_consume_backoffs.argtypes = [
        _PTR, _PTR, _PTR, _c_i64, _c_f64, _c_f64,
    ]
    lib.dcf_consume_backoffs.restype = None
    lib.dcf_expired_navs.argtypes = [_PTR, _c_i64, _c_f64, _PTR]
    lib.dcf_expired_navs.restype = _c_i64
    return lib


class CjitBackend(VectorBackend):
    """Generated-C kernels (``kernels="cjit"``).

    Inherits the vectorized ``row_distances`` (numpy hypot — the
    no-transcendentals rule) and overrides every branchy loop with the
    compiled translation.  All C calls receive raw buffer addresses;
    a zero-length array's address is never dereferenced (every loop is
    bounded by the explicit ``n`` argument).
    """

    name = "cjit"
    compiled = True

    def __init__(self) -> None:
        super().__init__()
        self._lib = _build_library()
        self._keep_u8: dict = {}

    def nasch_step(self, pos, vel, gaps_out, wrapped_out, draws,
                   use_draws, p, v_max, num_cells) -> int:
        return int(self._lib.nasch_step(
            pos.ctypes.data, vel.ctypes.data, gaps_out.ctypes.data,
            wrapped_out.ctypes.data, draws.ctypes.data,
            1 if use_draws else 0, p, v_max, num_cells, len(pos),
        ))

    def cyclic_gaps(self, pos, num_cells) -> np.ndarray:
        n = len(pos)
        out = np.empty(n, dtype=np.int64)
        if n:
            pos = np.ascontiguousarray(pos, dtype=np.int64)
            self._lib.cyclic_gaps(
                pos.ctypes.data, num_cells, out.ctypes.data, n
            )
        return out

    def row_select(self, cand, ids, num_positions):
        cand = np.ascontiguousarray(cand, dtype=np.int64)
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        keep = self._keep_u8.get(num_positions)
        if keep is None:
            keep = np.zeros(num_positions, dtype=np.uint8)
            self._keep_u8[num_positions] = keep
        sel_ids = np.empty(len(ids), dtype=np.int64)
        reg_idx = np.empty(len(ids), dtype=np.int64)
        k = int(self._lib.row_select(
            cand.ctypes.data, len(cand), ids.ctypes.data, len(ids),
            keep.ctypes.data, num_positions,
            sel_ids.ctypes.data, reg_idx.ctypes.data,
        ))
        return sel_ids[:k], reg_idx[:k]

    def row_filter(self, powers, thresholds, sel_ids, sender_id):
        powers = np.ascontiguousarray(powers, dtype=np.float64)
        thresholds = np.ascontiguousarray(thresholds, dtype=np.float64)
        sel_ids = np.ascontiguousarray(sel_ids, dtype=np.int64)
        out = np.empty(len(powers), dtype=np.int64)
        k = int(self._lib.row_filter(
            powers.ctypes.data, thresholds.ctypes.data,
            sel_ids.ctypes.data, sender_id, len(powers), out.ctypes.data,
        ))
        return out[:k]

    def dcf_consume_backoffs(self, slots, started, idx, now, slot_s) -> None:
        idx = np.ascontiguousarray(idx, dtype=np.int64)
        self._lib.dcf_consume_backoffs(
            slots.ctypes.data, started.ctypes.data, idx.ctypes.data,
            len(idx), now, slot_s,
        )

    def dcf_expired_navs(self, nav, now) -> np.ndarray:
        out = np.empty(len(nav), dtype=np.int64)
        k = int(self._lib.dcf_expired_navs(
            nav.ctypes.data, len(nav), now, out.ctypes.data
        ))
        return out[:k]
