"""Registry-selectable kernel backends for the simulator's hot loops.

The ``kernels`` registry namespace names *where* the hot inner loops
run — NaSch CA stepping, DCF bookkeeping, link-cache row construction
— without changing *what* they compute (every backend is bit-identical
to the pure-Python reference; see :mod:`repro.kernels.pyref` for the
rules that make that guarantee hold).

Built-in backends:

``auto`` (the scenario default)
    Best available: ``$REPRO_KERNELS`` override if set, else numba,
    else generated C (``cjit``), else the numpy ``vector`` backend.
    The probing is silent — ``auto`` means "whatever runs here".
``python``
    The explicit-loop reference (ground truth for identity tests).
``vector``
    The numpy expressions the components ran inline before this
    package existed; always available.
``numba``
    ``@njit`` over the reference loops; warns once and falls back to
    ``python`` when numba is not installed (per-loop bit-identity is
    preserved by the no-RNG / no-transcendentals kernel rules).
``cjit``
    A generated-C translation compiled with the system C compiler;
    warns once and falls back to ``vector`` when no compiler exists.

Backend instances are process-local singletons (their scratch buffers
make them stateful but cheap to share; runs are single-threaded), so
``resolve_backend("auto")`` probes compilers at most once per process.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Set

from repro.core.registry import register
from repro.core import registry as _registry
from repro.kernels.base import KernelBackend, KernelUnavailable
from repro.kernels.dcf_book import DcfBook
from repro.kernels.vector import VectorBackend

__all__ = [
    "DcfBook",
    "KernelBackend",
    "KernelUnavailable",
    "VectorBackend",
    "resolve_backend",
]

#: Singleton cache: canonical backend name -> constructed instance.
_BACKENDS: Dict[str, KernelBackend] = {}
#: Backend names whose fallback warning already fired this process.
_WARNED: Set[str] = set()


def _fallback(name: str, fallback_name: str, reason: str) -> KernelBackend:
    if name not in _WARNED:
        _WARNED.add(name)
        warnings.warn(
            f"kernels={name!r} unavailable ({reason}); "
            f"falling back to kernels={fallback_name!r} "
            f"(bit-identical, slower)",
            RuntimeWarning,
            stacklevel=3,
        )
    return resolve_backend(fallback_name)


@register("kernels", "python")
def make_python(scenario=None) -> KernelBackend:
    """Pure-Python reference loops (the bit-identity ground truth)."""
    return KernelBackend()


@register("kernels", "vector")
def make_vector(scenario=None) -> KernelBackend:
    """Vectorized numpy kernels (always available)."""
    return VectorBackend()


@register("kernels", "numba")
def make_numba(scenario=None) -> KernelBackend:
    """Numba ``@njit`` kernels; python fallback when numba is absent."""
    from repro.kernels.numba_backend import NumbaBackend

    try:
        return NumbaBackend()
    except KernelUnavailable as exc:
        return _fallback("numba", "python", str(exc))


@register("kernels", "cjit")
def make_cjit(scenario=None) -> KernelBackend:
    """Generated-C kernels; vector fallback when no compiler exists."""
    from repro.kernels.cjit import CjitBackend

    try:
        return CjitBackend()
    except KernelUnavailable as exc:
        return _fallback("cjit", "vector", str(exc))


@register("kernels", "auto")
def make_auto(scenario=None) -> KernelBackend:
    """Best backend that runs here (env override, numba, cjit, vector)."""
    override = os.environ.get("REPRO_KERNELS")
    if override:
        return resolve_backend(override)
    try:
        from repro.kernels.numba_backend import NumbaBackend

        return NumbaBackend()
    except KernelUnavailable:
        pass
    try:
        from repro.kernels.cjit import CjitBackend

        return CjitBackend()
    except KernelUnavailable:
        pass
    return VectorBackend()


def resolve_backend(spec="auto") -> KernelBackend:
    """The backend instance for ``spec``.

    ``spec`` may be a :class:`KernelBackend` instance (returned as-is,
    the injection hook for tests and third-party code) or a registry
    name — resolved case-insensitively through the ``kernels``
    namespace, so registered third-party backends work anywhere a
    built-in name does.  Instances are cached per canonical name;
    unavailable compiled backends warn once and fall back.
    """
    if isinstance(spec, KernelBackend):
        return spec
    canonical = _registry.normalize("kernels", spec)
    backend = _BACKENDS.get(canonical)
    if backend is None:
        backend = _registry.resolve("kernels", canonical)(None)
        _BACKENDS[canonical] = backend
    return backend
