"""CSV and JSON trace exporters.

The paper notes that "extending the BA block in order to export to other
formats is straightforward" — these are the two obvious other formats, each
with a matching parser so traces round-trip losslessly (up to float text
precision for CSV).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Union

import numpy as np

from repro.mobility.trace import MobilityTrace

_CSV_HEADER = ["time", "node", "x", "y", "teleported"]


def trace_to_csv(trace: MobilityTrace) -> str:
    """Render a trace as CSV with columns time,node,x,y,teleported."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_CSV_HEADER)
    for row in range(trace.num_samples):
        for node in range(trace.num_nodes):
            teleported = (
                bool(trace.teleported[row, node])
                if trace.teleported is not None
                else False
            )
            writer.writerow(
                [
                    repr(float(trace.times[row])),
                    node,
                    repr(float(trace.positions[row, node, 0])),
                    repr(float(trace.positions[row, node, 1])),
                    int(teleported),
                ]
            )
    return buffer.getvalue()


def trace_from_csv(text: str) -> MobilityTrace:
    """Parse a CSV produced by :func:`trace_to_csv`."""
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header != _CSV_HEADER:
        raise ValueError(f"unexpected CSV header: {header}")
    rows = [row for row in reader if row]
    if not rows:
        raise ValueError("CSV trace contains no samples")
    times = sorted({float(row[0]) for row in rows})
    nodes = sorted({int(row[1]) for row in rows})
    if nodes != list(range(len(nodes))):
        raise ValueError(f"node ids must be contiguous from 0, got {nodes}")
    time_index = {t: i for i, t in enumerate(times)}
    positions = np.full((len(times), len(nodes), 2), np.nan)
    teleported = np.zeros((len(times), len(nodes)), dtype=bool)
    any_teleport = False
    for row in rows:
        t, node = time_index[float(row[0])], int(row[1])
        positions[t, node] = (float(row[2]), float(row[3]))
        if int(row[4]):
            teleported[t, node] = True
            any_teleport = True
    if np.isnan(positions).any():
        raise ValueError("CSV trace is missing some (time, node) samples")
    return MobilityTrace(
        times=np.array(times),
        positions=positions,
        teleported=teleported if any_teleport else None,
    )


def trace_to_json(trace: MobilityTrace, indent: Union[int, None] = None) -> str:
    """Render a trace as a JSON document."""
    document = {
        "format": "cavenet-trace",
        "version": 1,
        "num_nodes": trace.num_nodes,
        "times": [float(t) for t in trace.times],
        "positions": trace.positions.tolist(),
        "teleported": (
            trace.teleported.tolist() if trace.teleported is not None else None
        ),
    }
    return json.dumps(document, indent=indent)


def trace_from_json(text: str) -> MobilityTrace:
    """Parse a JSON document produced by :func:`trace_to_json`."""
    document = json.loads(text)
    if document.get("format") != "cavenet-trace":
        raise ValueError(
            f"not a cavenet-trace document: format={document.get('format')!r}"
        )
    teleported = document.get("teleported")
    return MobilityTrace(
        times=np.array(document["times"], dtype=float),
        positions=np.array(document["positions"], dtype=float),
        teleported=(
            np.array(teleported, dtype=bool) if teleported is not None else None
        ),
    )
