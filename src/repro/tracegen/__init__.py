"""Movement-trace exporters and parsers.

CAVENET's Behavioural Analyzer hands movement patterns to the protocol
simulator through trace files (paper Fig. 2 and Fig. 3-b).  The primary
format is the ns-2 movement file; CSV and JSON exporters are provided for
other consumers, and every format round-trips through a parser.
"""

from repro.tracegen.ns2 import (
    Ns2TraceWriter,
    parse_ns2_trace,
    trace_from_ns2,
)
from repro.tracegen.tabular import (
    trace_from_csv,
    trace_from_json,
    trace_to_csv,
    trace_to_json,
)

__all__ = [
    "Ns2TraceWriter",
    "parse_ns2_trace",
    "trace_from_ns2",
    "trace_to_csv",
    "trace_from_csv",
    "trace_to_json",
    "trace_from_json",
]
