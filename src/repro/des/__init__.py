"""Discrete-event simulation kernel.

This is the substrate under the Communication Protocol Simulator: a classic
event-heap scheduler with cancellable events and periodic timers, playing the
role ns-2's scheduler plays in the original CAVENET tool chain.
"""

from repro.des.engine import Simulator
from repro.des.event import Event
from repro.des.timer import PeriodicTimer

__all__ = ["Simulator", "Event", "PeriodicTimer"]
