"""The event-heap simulator engine."""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.des.event import Event


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


class Simulator:
    """A minimal, deterministic discrete-event scheduler.

    Time is a float in seconds, starting at 0.  Events scheduled for the same
    instant fire in the order they were scheduled.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run(until=2.0)
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for event in self._heap if event.active)

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may :meth:`~Event.cancel`
        (the idiom for ACK timeouts, hello timers, route expiry...).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        event = Event(self._now + delay, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    def stop(self) -> None:
        """Stop the run loop after the currently-firing event returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> None:
        """Process events in time order.

        With ``until`` set, processes every event with ``time <= until`` and
        then advances the clock to ``until``; without it, runs until the heap
        drains or :meth:`stop` is called.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback(*event.args)
            if until is not None and not self._stopped and until > self._now:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire the single next active event.  Returns False when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            return True
        return False
