"""The event-heap simulator engine."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.des.event import Event
from repro.util.errors import InvariantViolation, ReproError


class SimulationError(ReproError, RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


class Simulator:
    """A minimal, deterministic discrete-event scheduler.

    Time is a float in seconds, starting at 0.  Events scheduled for the same
    instant fire in the order they were scheduled.

    The heap stores ``(time, seq, event)`` tuples rather than bare events:
    tuple comparison of two floats/ints runs in C, whereas ``Event.__lt__``
    would be a Python call — and heap sifting is the hottest spot of a
    packed simulation (millions of comparisons per run).  ``seq`` is unique,
    so the comparison never falls through to the event object.

    Two always-on invariant guards protect long campaigns from silent
    state corruption, both O(1) per event:

    * **time monotonicity** — a popped event behind the current clock means
      the heap (or an event's time) was corrupted; the run aborts with
      :class:`~repro.util.errors.InvariantViolation` instead of silently
      rewinding time;
    * **no starvation** — more than ``max_same_time_events`` consecutive
      firings at one instant means a zero-delay event loop is starving the
      clock (the classic runaway-retry bug); the default bound is far above
      anything a real scenario produces.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run(until=2.0)
    >>> fired
    ['b', 'a']
    """

    #: Default cap on consecutive events at one instant (starvation guard).
    DEFAULT_MAX_SAME_TIME_EVENTS = 1_000_000

    def __init__(self, max_same_time_events: Optional[int] = None) -> None:
        self.max_same_time_events = (
            int(max_same_time_events)
            if max_same_time_events is not None
            else self.DEFAULT_MAX_SAME_TIME_EVENTS
        )
        self._same_time_run = 0
        self._now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        # Active (scheduled, not yet fired, not cancelled) event count,
        # maintained incrementally so `pending_events` never scans the heap
        # (it is polled from monitoring/telemetry paths).
        self._active = 0
        self._note_cancel = self._decrement_active
        #: Events fired so far (cancelled events are skipped, not counted).
        self.events_processed = 0

    def _decrement_active(self) -> None:
        self._active -= 1

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events.  O(1)."""
        return self._active

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may :meth:`~Event.cancel`
        (the idiom for ACK timeouts, hello timers, route expiry...).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        time = self._now + delay
        seq = self._seq
        event = Event(time, seq, callback, args, self._note_cancel)
        self._seq = seq + 1
        self._active += 1
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_batch(
        self,
        items: Iterable[Tuple[float, Callable[..., Any], Tuple[Any, ...]]],
    ) -> List[Event]:
        """Schedule many ``(delay, callback, args)`` entries in one call.

        The fan-out primitive of the channel fast path: semantically
        identical to calling :meth:`schedule` per item (same sequence-number
        tie-breaking, in iteration order) but with the per-call overhead
        hoisted out of the loop.
        """
        now = self._now
        seq = self._seq
        heap = self._heap
        heappush = heapq.heappush
        note_cancel = self._note_cancel
        events: List[Event] = []
        try:
            for delay, callback, args in items:
                if delay < 0:
                    raise SimulationError(
                        f"cannot schedule in the past: delay={delay}"
                    )
                time = now + delay
                event = Event(time, seq, callback, args, note_cancel)
                heappush(heap, (time, seq, event))
                seq += 1
                events.append(event)
        finally:
            # Keep the counters exact even if the iterable raises mid-batch.
            self._seq = seq
            self._active += len(events)
        return events

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    def stop(self) -> None:
        """Stop the run loop after the currently-firing event returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> None:
        """Process events in time order.

        With ``until`` set, processes every event with ``time <= until`` and
        then advances the clock to ``until``; without it, runs until the heap
        drains or :meth:`stop` is called.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap and not self._stopped:
                time = heap[0][0]
                if until is not None and time > until:
                    break
                event = heappop(heap)[2]
                if event.cancelled:
                    continue
                self._check_time_invariants(time)
                # Fired events leave the active count now; a later cancel()
                # must not decrement again.
                event.on_cancel = None
                self._active -= 1
                self.events_processed += 1
                self._now = time
                event.callback(*event.args)
            if until is not None and not self._stopped and until > self._now:
                self._now = until
        finally:
            self._running = False

    def _check_time_invariants(self, time: float) -> None:
        """O(1) per-event guards: monotone clock, no zero-delay starvation."""
        if time < self._now:
            raise InvariantViolation(
                "event time went backwards",
                event_time=time,
                now=self._now,
                events_processed=self.events_processed,
            )
        if time == self._now:
            self._same_time_run += 1
            if self._same_time_run > self.max_same_time_events:
                raise InvariantViolation(
                    "event starvation: too many consecutive events at one "
                    "instant (zero-delay event loop?)",
                    now=self._now,
                    limit=self.max_same_time_events,
                    events_processed=self.events_processed,
                )
        else:
            self._same_time_run = 0

    def step(self) -> bool:
        """Fire the single next active event.  Returns False when drained."""
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._check_time_invariants(time)
            event.on_cancel = None
            self._active -= 1
            self.events_processed += 1
            self._now = time
            event.callback(*event.args)
            return True
        return False
