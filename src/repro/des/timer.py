"""Periodic timers built on the event heap.

Routing protocols are driven by periodic beacons (HELLO, TC, DSDV table
dumps).  ``PeriodicTimer`` wraps the reschedule-on-fire idiom and supports
optional per-firing jitter, which real implementations add to de-synchronise
beacons between neighbouring nodes.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.des.engine import Simulator
from repro.des.event import Event
from repro.util.errors import ConfigError


class PeriodicTimer:
    """Fires ``callback()`` every ``interval`` seconds until stopped.

    ``jitter`` (seconds) subtracts a uniform random amount in ``[0, jitter)``
    from each interval, mirroring the MAX_JITTER behaviour of OLSR (RFC 3626
    section 18.1).  Pass a seeded generator for reproducibility.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        start_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ConfigError(f"interval must be > 0, got {interval}")
        if jitter < 0 or jitter >= interval:
            raise ConfigError(f"jitter must be in [0, interval), got {jitter}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._jitter = jitter
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._event: Optional[Event] = None
        self._running = False
        self._start_delay = start_delay

    @property
    def running(self) -> bool:
        """True while the timer is armed."""
        return self._running

    def start(self) -> None:
        """Arm the timer.  The first firing happens after ``start_delay``
        (default: one jittered interval).  Starting twice is a no-op."""
        if self._running:
            return
        self._running = True
        delay = (
            self._start_delay
            if self._start_delay is not None
            else self._next_delay()
        )
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer; the pending firing is cancelled."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _next_delay(self) -> float:
        if self._jitter > 0:
            return self._interval - float(self._rng.uniform(0, self._jitter))
        return self._interval

    def _fire(self) -> None:
        if not self._running:
            return
        self._event = self._sim.schedule(self._next_delay(), self._fire)
        self._callback()
