"""Scheduled events for the discrete-event kernel."""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple


class Event:
    """A callback scheduled at a simulated time.

    Events are created through :meth:`repro.des.Simulator.schedule` and are
    ordered by ``(time, sequence)`` so that simultaneous events fire in
    scheduling order (deterministic tie-breaking, matching ns-2 semantics).

    A cancelled event stays in the heap but is skipped by the engine; this
    "lazy deletion" keeps cancellation O(1).  ``on_cancel`` (set by the
    scheduler) fires exactly once, on the first cancellation — the engine
    uses it to keep its active-event counter exact without heap scans.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "on_cancel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.on_cancel = on_cancel

    def cancel(self) -> None:
        """Prevent this event from firing.  Cancelling twice is harmless."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()

    @property
    def active(self) -> bool:
        """True while the event is still going to fire."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "active"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"
